#include "core/fiber.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace simany {
namespace {

TEST(Fiber, RunsToCompletion) {
  FiberPool pool;
  bool ran = false;
  auto f = pool.create([&] { ran = true; });
  EXPECT_FALSE(f->finished());
  f->resume();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f->finished());
}

TEST(Fiber, YieldSuspendsAndResumes) {
  FiberPool pool;
  std::vector<int> order;
  auto f = pool.create([&] {
    order.push_back(1);
    Fiber::yield();
    order.push_back(3);
    Fiber::yield();
    order.push_back(5);
  });
  f->resume();
  order.push_back(2);
  f->resume();
  order.push_back(4);
  f->resume();
  EXPECT_TRUE(f->finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecution) {
  FiberPool pool;
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  auto f = pool.create([&] { seen = Fiber::current(); });
  f->resume();
  EXPECT_EQ(seen, f.get());
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, InterleavesTwoFibers) {
  FiberPool pool;
  std::vector<int> order;
  auto a = pool.create([&] {
    order.push_back(10);
    Fiber::yield();
    order.push_back(12);
  });
  auto b = pool.create([&] {
    order.push_back(11);
    Fiber::yield();
    order.push_back(13);
  });
  a->resume();
  b->resume();
  a->resume();
  b->resume();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 12, 13}));
}

TEST(Fiber, DeepCallStackSurvives) {
  FiberPool pool;
  // Recursion with a yield at the bottom: the whole stack must persist
  // across the suspension.
  int leaf_depth = 0;
  std::function<void(int)> rec = [&](int d) {
    if (d == 0) {
      leaf_depth = 64;
      Fiber::yield();
      return;
    }
    rec(d - 1);
  };
  auto f = pool.create([&] { rec(64); });
  f->resume();
  EXPECT_EQ(leaf_depth, 64);
  EXPECT_FALSE(f->finished());
  f->resume();
  EXPECT_TRUE(f->finished());
}

TEST(FiberPool, RecyclesStacks) {
  FiberPool pool(64 * 1024);
  auto f1 = pool.create([] {});
  f1->resume();
  pool.recycle(std::move(f1));
  EXPECT_EQ(pool.pooled(), 1u);
  auto f2 = pool.create([] {});
  EXPECT_EQ(pool.pooled(), 0u);  // stack was reused
  f2->resume();
  EXPECT_TRUE(f2->finished());
}

TEST(Fiber, ExceptionTransportedAcrossSwitch) {
  // Exceptions cannot propagate through swapcontext: the trampoline
  // captures them and the scheduler rethrows from exception().
  FiberPool pool;
  auto f = pool.create([] {
    throw std::runtime_error("boom from fiber");
  });
  f->resume();
  EXPECT_TRUE(f->finished());
  ASSERT_NE(f->exception(), nullptr);
  try {
    std::rethrow_exception(f->exception());
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom from fiber");
  }
}

TEST(Fiber, ExceptionAfterYieldStillTransported) {
  FiberPool pool;
  auto f = pool.create([] {
    Fiber::yield();
    throw std::logic_error("late failure");
  });
  f->resume();
  EXPECT_FALSE(f->finished());
  EXPECT_EQ(f->exception(), nullptr);
  f->resume();
  EXPECT_TRUE(f->finished());
  EXPECT_NE(f->exception(), nullptr);
  EXPECT_THROW(std::rethrow_exception(f->exception()), std::logic_error);
}

TEST(Fiber, UnwindRunsDestructorsAndFrees) {
  // FiberUnwind thrown inside a suspended fiber must unwind its stack:
  // destructors run, the fiber finishes, and its stack is recyclable.
  FiberPool pool(64 * 1024);
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  bool cancel = false;
  auto f = pool.create([&] {
    Sentinel s{&destroyed};
    Fiber::yield();
    if (cancel) throw FiberUnwind{};
    ADD_FAILURE() << "fiber should have been cancelled";
  });
  f->resume();
  EXPECT_FALSE(destroyed);
  cancel = true;
  f->resume();
  EXPECT_TRUE(destroyed);
  EXPECT_TRUE(f->finished());
  pool.recycle(std::move(f));
  EXPECT_EQ(pool.pooled(), 1u);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(Fiber, UnwindNotCatchableAsStdException) {
  // Task code catching std::exception must not swallow a cancellation.
  FiberPool pool(64 * 1024);
  bool swallowed = false;
  auto f = pool.create([&] {
    try {
      throw FiberUnwind{};
    } catch (const std::exception&) {
      swallowed = true;
    }
  });
  f->resume();
  EXPECT_TRUE(f->finished());
  EXPECT_FALSE(swallowed);  // catch(std::exception&) did not match
  EXPECT_EQ(f->exception(), nullptr);  // trampoline's catch-all ate it
}

TEST(FiberPool, OutstandingTracksLiveFibers) {
  FiberPool pool(64 * 1024);
  EXPECT_EQ(pool.outstanding(), 0u);
  auto a = pool.create([] { Fiber::yield(); });
  auto b = pool.create([] {});
  EXPECT_EQ(pool.outstanding(), 2u);
  b->resume();
  pool.recycle(std::move(b));
  EXPECT_EQ(pool.outstanding(), 1u);
  a->resume();
  a->resume();
  pool.recycle(std::move(a));
  EXPECT_EQ(pool.outstanding(), 0u);
  // Saturating: recycling a fiber created by another pool (migration)
  // must not underflow.
  FiberPool other(64 * 1024);
  auto m = other.create([] {});
  m->resume();
  pool.recycle(std::move(m));
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(FiberPool, ManySequentialFibers) {
  FiberPool pool(64 * 1024);
  int sum = 0;
  for (int i = 0; i < 100; ++i) {
    auto f = pool.create([&, i] { sum += i; });
    f->resume();
    pool.recycle(std::move(f));
  }
  EXPECT_EQ(sum, 4950);
  EXPECT_EQ(pool.created(), 100u);
  EXPECT_LE(pool.pooled(), 1u);
}

}  // namespace
}  // namespace simany
