#include "core/fiber.h"

#include <gtest/gtest.h>

#include <vector>

namespace simany {
namespace {

TEST(Fiber, RunsToCompletion) {
  FiberPool pool;
  bool ran = false;
  auto f = pool.create([&] { ran = true; });
  EXPECT_FALSE(f->finished());
  f->resume();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f->finished());
}

TEST(Fiber, YieldSuspendsAndResumes) {
  FiberPool pool;
  std::vector<int> order;
  auto f = pool.create([&] {
    order.push_back(1);
    Fiber::yield();
    order.push_back(3);
    Fiber::yield();
    order.push_back(5);
  });
  f->resume();
  order.push_back(2);
  f->resume();
  order.push_back(4);
  f->resume();
  EXPECT_TRUE(f->finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecution) {
  FiberPool pool;
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  auto f = pool.create([&] { seen = Fiber::current(); });
  f->resume();
  EXPECT_EQ(seen, f.get());
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, InterleavesTwoFibers) {
  FiberPool pool;
  std::vector<int> order;
  auto a = pool.create([&] {
    order.push_back(10);
    Fiber::yield();
    order.push_back(12);
  });
  auto b = pool.create([&] {
    order.push_back(11);
    Fiber::yield();
    order.push_back(13);
  });
  a->resume();
  b->resume();
  a->resume();
  b->resume();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 12, 13}));
}

TEST(Fiber, DeepCallStackSurvives) {
  FiberPool pool;
  // Recursion with a yield at the bottom: the whole stack must persist
  // across the suspension.
  int leaf_depth = 0;
  std::function<void(int)> rec = [&](int d) {
    if (d == 0) {
      leaf_depth = 64;
      Fiber::yield();
      return;
    }
    rec(d - 1);
  };
  auto f = pool.create([&] { rec(64); });
  f->resume();
  EXPECT_EQ(leaf_depth, 64);
  EXPECT_FALSE(f->finished());
  f->resume();
  EXPECT_TRUE(f->finished());
}

TEST(FiberPool, RecyclesStacks) {
  FiberPool pool(64 * 1024);
  auto f1 = pool.create([] {});
  f1->resume();
  pool.recycle(std::move(f1));
  EXPECT_EQ(pool.pooled(), 1u);
  auto f2 = pool.create([] {});
  EXPECT_EQ(pool.pooled(), 0u);  // stack was reused
  f2->resume();
  EXPECT_TRUE(f2->finished());
}

TEST(FiberPool, ManySequentialFibers) {
  FiberPool pool(64 * 1024);
  int sum = 0;
  for (int i = 0; i < 100; ++i) {
    auto f = pool.create([&, i] { sum += i; });
    f->resume();
    pool.recycle(std::move(f));
  }
  EXPECT_EQ(sum, 4950);
  EXPECT_EQ(pool.created(), 100u);
  EXPECT_LE(pool.pooled(), 1u);
}

}  // namespace
}  // namespace simany
