// Golden snapshot-format regression (src/snapshot).
//
// A committed `simany-snapshot-v1` file pins the container format AND
// the canonical state image for one fixed (architecture, workload,
// cursor): any change to the wire layout, the codec's field order, or
// the engine's scheduling shows up as a byte diff against the golden.
// When a change is intentional, regenerate and review:
//
//   ./test_snapshot_golden --update-goldens
//
// then commit the updated file under tests/goldens/.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/sim_error.h"
#include "dwarfs/dwarfs.h"
#include "snapshot/plan.h"
#include "snapshot/snapshot.h"

namespace simany {
namespace {

bool g_update_goldens = false;

constexpr char kGoldenName[] = "snapshot_mesh8_spmxv_seed17";
constexpr std::uint64_t kSeed = 17;
constexpr double kFactor = 0.04;
constexpr std::uint64_t kCursor = 32;

std::string golden_path() {
  return std::string(SIMANY_GOLDEN_DIR) + "/" + kGoldenName + ".snap";
}

std::uint64_t golden_workload_fp() {
  return snapshot::workload_fingerprint("spmxv", kSeed, kFactor);
}

/// Runs the pinned scenario, writing its snapshot to `path`.
SimStats write_snapshot_to(const std::string& path) {
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  Engine sim(cfg);
  snapshot::SnapshotPlan plan;
  plan.path = path;
  plan.at_quanta = kCursor;
  plan.workload_fp = golden_workload_fp();
  sim.snapshot_to(plan);
  return sim.run(dwarfs::dwarf_by_name("spmxv").make_root(kSeed, kFactor));
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::vector<std::uint8_t> data(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return data;
}

TEST(SnapshotGolden, FormatIsByteStable) {
  const std::string fresh = ::testing::TempDir() + "simany_golden_fresh.snap";
  (void)write_snapshot_to(fresh);
  const std::vector<std::uint8_t> actual = slurp(fresh);
  std::remove(fresh.c_str());

  if (g_update_goldens) {
    std::ofstream out(golden_path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << golden_path();
    out.write(reinterpret_cast<const char*>(actual.data()),
              static_cast<std::streamsize>(actual.size()));
    GTEST_SKIP() << "updated golden " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << golden_path()
      << " — run test_snapshot_golden --update-goldens and commit it";
  const std::vector<std::uint8_t> expected = slurp(golden_path());
  if (expected == actual) return;

  const std::size_t n = std::min(expected.size(), actual.size());
  std::size_t off = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (expected[i] != actual[i]) {
      off = i;
      break;
    }
  }
  FAIL() << "snapshot bytes diverge from " << golden_path()
         << " (golden " << expected.size() << " bytes, actual "
         << actual.size() << ") at offset " << off
         << "\nIf the format or scheduling change is intentional, rerun "
            "with --update-goldens and commit the new golden.";
}

TEST(SnapshotGolden, GoldenParsesWithPinnedIdentity) {
  const snapshot::SnapshotFile f = snapshot::read_snapshot_file(golden_path());
  EXPECT_EQ(f.header.workload_fp, golden_workload_fp());
  // header.seed is the *config* seed; the workload seed is folded into
  // workload_fp instead.
  EXPECT_EQ(f.header.seed, ArchConfig::shared_mesh(8).seed);
  EXPECT_EQ(f.header.num_cores, 8u);
  EXPECT_EQ(f.header.shards, 1u);
  EXPECT_EQ(f.header.cursor_requested, kCursor);
  EXPECT_GE(f.header.cursor_actual, kCursor);
  EXPECT_FALSE(f.image.empty());
}

TEST(SnapshotGolden, RestoreFromCommittedGoldenFinishesIdentically) {
  // The committed artifact is not just stable, it *works*: restoring
  // from it and finishing matches an uninterrupted run bit-for-bit.
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  const auto run_stats = [&](bool resume) {
    Engine sim(cfg);
    if (resume) sim.restore_from(golden_path(), golden_workload_fp());
    return sim.run(dwarfs::dwarf_by_name("spmxv").make_root(kSeed, kFactor));
  };
  const SimStats base = run_stats(false);
  const SimStats resumed = run_stats(true);
  EXPECT_EQ(base.completion_ticks, resumed.completion_ticks);
  EXPECT_EQ(base.tasks_spawned, resumed.tasks_spawned);
  EXPECT_EQ(base.messages, resumed.messages);
  EXPECT_EQ(base.sync_stalls, resumed.sync_stalls);
  EXPECT_EQ(base.fiber_switches, resumed.fiber_switches);
}

TEST(SnapshotGolden, FutureVersionOfGoldenIsRefused) {
  // Forward refusal on the real artifact: bump the version word and
  // re-seal the trailing digest; the reader must refuse with the
  // unknown version in Context::detail.
  std::vector<std::uint8_t> bad = slurp(golden_path());
  ASSERT_GT(bad.size(), 16u);
  bad[8] = static_cast<std::uint8_t>(snapshot::kFormatVersion + 1);
  const std::size_t body = bad.size() - 8;
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < body; ++i) {
    h ^= bad[i];
    h *= 1099511628211ULL;
  }
  for (int i = 0; i < 8; ++i) {
    bad[body + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((h >> (i * 8)) & 0xffu);
  }
  try {
    (void)snapshot::decode_snapshot(bad.data(), bad.size());
    FAIL() << "future version accepted";
  } catch (const SimError& e) {
    EXPECT_EQ(e.context().code, SimErrorCode::kSnapshotCorrupt);
    EXPECT_EQ(e.context().detail, snapshot::kFormatVersion + 1u);
  }
}

}  // namespace
}  // namespace simany

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-goldens") == 0) {
      simany::g_update_goldens = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
