// Determinism contract of the parallel host backend.
//
// Two guarantees are tested, on several topologies and dwarfs:
//   1. A parallel run with a single shard is bit-identical to the
//      sequential backend, for any worker-thread count: with nothing
//      cross-shard, every code path degenerates to the seed engine.
//   2. For a fixed shard count, results are bit-identical across
//      worker-thread counts: simulated timing may depend
//      (deterministically) on the shard count, never on host threads
//      or their wall-clock interleaving.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"
#include "net/topology.h"

namespace simany {
namespace {

constexpr double kTiny = 0.05;

/// Everything the engine reports that should be reproducible, including
/// per-core busy time (a much stricter probe than the aggregates: any
/// reordering anywhere shows up in some core's busy ticks).
struct Fingerprint {
  Tick completion;
  std::uint64_t spawned, inlined, migrated, messages, stalls, switches;
  std::uint64_t probes, denied, joins;
  std::uint64_t net_bytes, net_hops;
  std::vector<Tick> core_busy;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint fingerprint(const SimStats& s) {
  return Fingerprint{s.completion_ticks, s.tasks_spawned,
                     s.tasks_inlined,    s.tasks_migrated,
                     s.messages,         s.sync_stalls,
                     s.fiber_switches,   s.probes_sent,
                     s.probes_denied,    s.joins_suspended,
                     s.network.bytes,    s.network.hops,
                     s.core_busy_ticks};
}

ArchConfig topo_config(const std::string& topo) {
  if (topo == "shared_mesh") return ArchConfig::shared_mesh(16);
  if (topo == "distributed_mesh") return ArchConfig::distributed_mesh(16);
  if (topo == "clustered") {
    return ArchConfig::clustered(ArchConfig::shared_mesh(16), 4);
  }
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  cfg.topology = net::Topology::ring(8);
  return cfg;  // "ring"
}

Fingerprint run_once(const std::string& topo, const char* dwarf,
                     HostMode mode, std::uint32_t threads,
                     std::uint32_t shards) {
  ArchConfig cfg = topo_config(topo);
  cfg.host.mode = mode;
  cfg.host.threads = threads;
  cfg.host.shards = shards;
  Engine sim(cfg);
  return fingerprint(
      sim.run(dwarfs::dwarf_by_name(dwarf).make_root(17, kTiny)));
}

class ParallelHost
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(ParallelHost, OneShardMatchesSequentialForAnyThreadCount) {
  const auto [topo, dwarf] = GetParam();
  const Fingerprint seq =
      run_once(topo, dwarf, HostMode::kSequential, 1, 1);
  for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    const Fingerprint par =
        run_once(topo, dwarf, HostMode::kParallel, threads, 1);
    EXPECT_TRUE(seq == par)
        << topo << "/" << dwarf << " with " << threads << " threads";
  }
}

TEST_P(ParallelHost, FixedShardCountIsThreadCountInvariant) {
  const auto [topo, dwarf] = GetParam();
  const Fingerprint base =
      run_once(topo, dwarf, HostMode::kParallel, 1, 4);
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    const Fingerprint par =
        run_once(topo, dwarf, HostMode::kParallel, threads, 4);
    EXPECT_TRUE(base == par)
        << topo << "/" << dwarf << " with " << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ParallelHost,
    ::testing::Combine(::testing::Values("shared_mesh", "distributed_mesh",
                                         "ring", "clustered"),
                       ::testing::Values("spmxv", "quicksort")),
    [](const ::testing::TestParamInfo<std::tuple<const char*, const char*>>&
           info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

TEST(ParallelHostMisc, ShardCountDefaultsToThreadCount) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.host.mode = HostMode::kParallel;
  cfg.host.threads = 4;
  Engine sim(cfg);
  const SimStats st =
      sim.run(dwarfs::dwarf_by_name("spmxv").make_root(17, kTiny));
  EXPECT_EQ(st.host_threads_used, 4u);
  EXPECT_GT(st.host_rounds, 1u);
}

TEST(ParallelHostMisc, ShardsClampToCoreCount) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.host.mode = HostMode::kParallel;
  cfg.host.threads = 16;  // more threads than cores
  Engine sim(cfg);
  const SimStats st =
      sim.run(dwarfs::dwarf_by_name("spmxv").make_root(17, kTiny));
  EXPECT_LE(st.host_threads_used, 4u);
  EXPECT_EQ(st.core_busy_ticks.size(), 4u);
}

TEST(ParallelHostMisc, SequentialReportsOneThread) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  Engine sim(cfg);
  const SimStats st =
      sim.run(dwarfs::dwarf_by_name("spmxv").make_root(17, kTiny));
  EXPECT_EQ(st.host_threads_used, 1u);
}

}  // namespace
}  // namespace simany
