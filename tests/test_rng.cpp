#include "core/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace simany {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowZeroBoundIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyTracksP) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.9)) ++hits;
  }
  EXPECT_NEAR(double(hits) / n, 0.9, 0.02);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto original = v;
  Rng rng(21);
  std::shuffle(v.begin(), v.end(), rng);
  EXPECT_NE(v, original);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace simany
