// Optional engine features: bounded-slack sync, broadcast occupancy
// proxies, speed-aware dispatch, host-parallelism sampling.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"

namespace simany {
namespace {

constexpr double kTiny = 0.04;

TEST(BoundedSlack, RunsDwarfsCorrectly) {
  for (const char* name : {"spmxv", "dijkstra"}) {
    ArchConfig cfg = ArchConfig::shared_mesh(16);
    cfg.sync_scheme = SyncScheme::kBoundedSlack;
    Engine sim(cfg);
    const auto stats =
        sim.run(dwarfs::dwarf_by_name(name).make_root(3, kTiny));
    EXPECT_GT(stats.completion_cycles(), 0u) << name;
  }
}

TEST(BoundedSlack, Deterministic) {
  auto once = [] {
    ArchConfig cfg = ArchConfig::shared_mesh(16);
    cfg.sync_scheme = SyncScheme::kBoundedSlack;
    Engine sim(cfg);
    return sim.run(dwarfs::dwarf_by_name("octree").make_root(5, kTiny))
        .completion_ticks;
  };
  EXPECT_EQ(once(), once());
}

TEST(BoundedSlack, IsStricterThanSpatialOnAMesh) {
  // On a mesh the global window is tighter than the per-hop bound, so
  // bounded slack can only stall as much or more.
  auto stalls = [](SyncScheme scheme) {
    ArchConfig cfg = ArchConfig::shared_mesh(16);
    cfg.sync_scheme = scheme;
    cfg.drift_t_cycles = 20;
    Engine sim(cfg);
    return sim.run(dwarfs::dwarf_by_name("octree").make_root(5, 0.08))
        .sync_stalls;
  };
  EXPECT_GE(stalls(SyncScheme::kBoundedSlack),
            stalls(SyncScheme::kSpatial));
}

TEST(BroadcastOccupancy, RunsAndSendsUpdates) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.runtime.broadcast_occupancy = true;
  Engine sim(cfg);
  const auto stats = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 32; ++i) {
      spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(200); });
    }
    ctx.join(g);
  });
  // Every spawn arrival broadcasts to the receiving core's neighbors:
  // far more messages than the instant-proxy run.
  ArchConfig base_cfg = ArchConfig::shared_mesh(16);
  Engine base(base_cfg);
  const auto base_stats = base.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 32; ++i) {
      spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(200); });
    }
    ctx.join(g);
  });
  EXPECT_GT(stats.messages, base_stats.messages);
}

TEST(BroadcastOccupancy, DwarfsStillVerify) {
  for (const char* name : {"dijkstra", "quicksort"}) {
    ArchConfig cfg = ArchConfig::shared_mesh(16);
    cfg.runtime.broadcast_occupancy = true;
    Engine sim(cfg);
    // Self-verification inside the dwarf throws on a wrong result.
    (void)sim.run(dwarfs::dwarf_by_name(name).make_root(11, kTiny));
  }
}

TEST(SpeedAwareDispatch, DwarfsVerifyOnPolymorphicMesh) {
  for (const auto& spec : dwarfs::all_dwarfs()) {
    ArchConfig cfg = ArchConfig::polymorphic(ArchConfig::shared_mesh(16));
    cfg.runtime.speed_aware_dispatch = true;
    Engine sim(cfg);
    (void)sim.run(spec.make_root(13, kTiny));
  }
}

TEST(SpeedAwareDispatch, NoEffectOnUniformMachines) {
  auto run = [](bool aware) {
    ArchConfig cfg = ArchConfig::shared_mesh(16);
    cfg.runtime.speed_aware_dispatch = aware;
    Engine sim(cfg);
    return sim.run(dwarfs::dwarf_by_name("spmxv").make_root(3, kTiny))
        .completion_ticks;
  };
  // All speeds equal: the weighted score induces the same choices.
  EXPECT_EQ(run(false), run(true));
}

TEST(Parallelism, SampledAndBounded) {
  Engine sim(ArchConfig::shared_mesh(64));
  const auto stats =
      sim.run(dwarfs::dwarf_by_name("octree").make_root(3, 0.3));
  EXPECT_GT(stats.parallelism_samples, 0u);
  EXPECT_LE(stats.parallelism_max, 64u);
  EXPECT_GT(stats.avg_parallelism(), 0.0);
  EXPECT_LE(stats.avg_parallelism(), 64.0);
}

TEST(Parallelism, GrowsWithMachineSize) {
  auto avg = [](std::uint32_t cores) {
    Engine sim(ArchConfig::shared_mesh(cores));
    return sim.run(dwarfs::dwarf_by_name("octree").make_root(3, 0.3))
        .avg_parallelism();
  };
  EXPECT_GT(avg(64), avg(4));
}

}  // namespace
}  // namespace simany
