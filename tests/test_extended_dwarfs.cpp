// Extension dwarfs: correctness on both memory models, determinism,
// and their characteristic scaling behaviours.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/extended.h"

namespace simany {
namespace {

constexpr double kTiny = 0.04;

class ExtendedDwarfs
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t, bool>> {
};

TEST_P(ExtendedDwarfs, RunsAndVerifies) {
  const auto [idx, cores, distributed] = GetParam();
  const auto& spec = dwarfs::extended_dwarfs()[idx];
  ArchConfig cfg = distributed ? ArchConfig::distributed_mesh(cores)
                               : ArchConfig::shared_mesh(cores);
  Engine sim(std::move(cfg));
  // Self-verification throws on a wrong result.
  const auto stats = sim.run(spec.make_root(7, kTiny));
  EXPECT_GT(stats.completion_cycles(), 0u) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtendedDwarfs,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values(1u, 4u, 16u), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint32_t, bool>>&
           info) {
      return dwarfs::extended_dwarfs()[std::get<0>(info.param)].name +
             "_" + std::to_string(std::get<1>(info.param)) + "c" +
             (std::get<2>(info.param) ? "_dist" : "_shared");
    });

TEST(ExtendedDwarfs2, Deterministic) {
  for (const auto& spec : dwarfs::extended_dwarfs()) {
    auto once = [&] {
      Engine sim(ArchConfig::shared_mesh(16));
      return sim.run(spec.make_root(11, kTiny)).completion_ticks;
    };
    EXPECT_EQ(once(), once()) << spec.name;
  }
}

TEST(ExtendedDwarfs2, MatmulScalesNearlyLinearlyToModestCores) {
  // Compute-bound regularity: the best-scaling workload in the suite.
  const auto& spec = dwarfs::extended_dwarfs()[0];
  auto vt = [&](std::uint32_t cores) {
    Engine sim(ArchConfig::shared_mesh(cores));
    return double(sim.run(spec.make_root(3, 0.15)).completion_ticks);
  };
  const double s16 = vt(1) / vt(16);
  EXPECT_GT(s16, 6.0);
}

TEST(ExtendedDwarfs2, StencilPaysForBulkSynchronization) {
  // Per-sweep joins serialize through the root: speedup must be
  // positive but clearly sublinear (the cost the paper's dwarfs avoid
  // by construction).
  const auto& spec = dwarfs::extended_dwarfs()[1];
  auto vt = [&](std::uint32_t cores) {
    Engine sim(ArchConfig::shared_mesh(cores));
    return double(sim.run(spec.make_root(3, 0.15)).completion_ticks);
  };
  const double s16 = vt(1) / vt(16);
  EXPECT_GT(s16, 1.5);
  EXPECT_LT(s16, 14.0);
}

TEST(ExtendedDwarfs2, HistogramSpeedupRisesWithStripedLocks) {
  // Reduction under locks still scales thanks to striping + the local
  // map phase dominating.
  const auto& spec = dwarfs::extended_dwarfs()[2];
  auto vt = [&](std::uint32_t cores) {
    Engine sim(ArchConfig::shared_mesh(cores));
    return double(sim.run(spec.make_root(3, 0.1)).completion_ticks);
  };
  EXPECT_GT(vt(1) / vt(16), 2.0);
}

}  // namespace
}  // namespace simany
