// End-to-end smoke tests for the engine: tiny programs on small meshes.
#include "core/engine.h"

#include <gtest/gtest.h>

#include "config/arch_config.h"

namespace simany {
namespace {

TEST(EngineSmoke, SingleCoreComputeAdvancesTime) {
  Engine sim(ArchConfig::shared_mesh(1));
  const auto stats = sim.run([](TaskCtx& ctx) { ctx.compute(1000); });
  // Task start overhead (10) + the block itself.
  EXPECT_EQ(stats.completion_cycles(), 1010u);
}

TEST(EngineSmoke, RunTwiceThrows) {
  Engine sim(ArchConfig::shared_mesh(1));
  (void)sim.run([](TaskCtx&) {});
  EXPECT_THROW((void)sim.run([](TaskCtx&) {}), std::logic_error);
}

TEST(EngineSmoke, SpawnAndJoinOnTwoCores) {
  ArchConfig cfg = ArchConfig::shared_mesh(2);
  Engine sim(cfg);
  bool child_ran = false;
  const auto stats = sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    ASSERT_TRUE(ctx.probe());  // neighbor must have room
    ctx.spawn(g, [&](TaskCtx& child) {
      child_ran = true;
      child.compute(500);
    });
    ctx.compute(100);
    ctx.join(g);
  });
  EXPECT_TRUE(child_ran);
  EXPECT_EQ(stats.tasks_spawned, 1u);
  EXPECT_GT(stats.completion_cycles(), 500u);
}

TEST(EngineSmoke, ProbeFailsOnSingleCore) {
  Engine sim(ArchConfig::shared_mesh(1));
  (void)sim.run([](TaskCtx& ctx) { EXPECT_FALSE(ctx.probe()); });
}

TEST(EngineSmoke, SpawnWithoutProbeThrows) {
  Engine sim(ArchConfig::shared_mesh(4));
  EXPECT_THROW((void)sim.run([](TaskCtx& ctx) {
                 ctx.spawn(ctx.make_group(), [](TaskCtx&) {});
               }),
               std::logic_error);
}

TEST(EngineSmoke, ManySpawnsAllExecute) {
  Engine sim(ArchConfig::shared_mesh(16));
  int count = 0;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 64; ++i) {
      spawn_or_run(ctx, g, [&count](TaskCtx& c) {
        c.compute(50);
        ++count;
      });
    }
    ctx.join(g);
  });
  EXPECT_EQ(count, 64);
}

TEST(EngineSmoke, LockMutualExclusionSerializes) {
  Engine sim(ArchConfig::shared_mesh(4));
  int in_critical = 0;
  bool overlap = false;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    const LockId lk = ctx.make_lock();
    for (int i = 0; i < 8; ++i) {
      spawn_or_run(ctx, g, [&, lk](TaskCtx& c) {
        c.lock(lk);
        if (++in_critical != 1) overlap = true;
        c.compute(200);
        --in_critical;
        c.unlock(lk);
      });
    }
    ctx.join(g);
  });
  EXPECT_FALSE(overlap);
}

TEST(EngineSmoke, DistributedCellRoundTrip) {
  Engine sim(ArchConfig::distributed_mesh(4));
  (void)sim.run([](TaskCtx& ctx) {
    const CellId cell = ctx.make_cell_at(64, 3);
    ctx.cell_acquire(cell, AccessMode::kWrite);
    ctx.compute(10);
    ctx.cell_release(cell);
  });
}

TEST(EngineSmoke, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine sim(ArchConfig::shared_mesh(8));
    return sim
        .run([](TaskCtx& ctx) {
          const GroupId g = ctx.make_group();
          for (int i = 0; i < 32; ++i) {
            spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(100); });
          }
          ctx.join(g);
        })
        .completion_ticks;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineSmoke, CycleLevelModeRuns) {
  Engine sim(ArchConfig::shared_mesh(4), ExecutionMode::kCycleLevel);
  int count = 0;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 8; ++i) {
      spawn_or_run(ctx, g, [&count](TaskCtx& c) {
        c.compute(100);
        ++count;
      });
    }
    ctx.join(g);
  });
  EXPECT_EQ(count, 8);
}

}  // namespace
}  // namespace simany
