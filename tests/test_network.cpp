#include "net/network.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace simany::net {
namespace {

NetworkParams plain() {
  NetworkParams p;
  p.router_penalty_cycles = 0;
  p.chunk_process_cycles = 0;
  p.chunk_bytes = 64;
  return p;
}

TEST(Network, LocalDeliveryIsFree) {
  const auto topo = Topology::mesh2d(4);
  Network net(topo, plain());
  EXPECT_EQ(net.send(2, 2, 1000, 77), 77u);
}

TEST(Network, SingleHopLatencyPlusSerialization) {
  const auto topo = Topology::mesh2d(4);  // 1-cycle links, 128 B/c
  Network net(topo, plain());
  // 128 bytes: 1 cycle serialization + 1 cycle latency.
  EXPECT_EQ(net.send(0, 1, 128, 0), ticks(2));
  // 256 bytes: 2 cycles serialization.
  net.reset();
  EXPECT_EQ(net.send(0, 1, 256, 0), ticks(3));
}

TEST(Network, ZeroByteMessageOnlyLatency) {
  const auto topo = Topology::mesh2d(4);
  Network net(topo, plain());
  EXPECT_EQ(net.send(0, 1, 0, 0), ticks(1));
}

TEST(Network, MultiHopAccumulates) {
  const auto topo = Topology::mesh2d(4);  // 2x2: 0->3 takes 2 hops
  Network net(topo, plain());
  const Tick one_hop = net.estimate(0, 1, 128, 0);
  net.reset();
  EXPECT_EQ(net.send(0, 3, 128, 0), 2 * one_hop);
}

TEST(Network, RouterPenaltyPerHop) {
  const auto topo = Topology::mesh2d(4);
  NetworkParams p = plain();
  p.router_penalty_cycles = 3;
  Network net(topo, p);
  EXPECT_EQ(net.send(0, 3, 128, 0), 2 * ticks(2 + 3));
}

TEST(Network, ChunkProcessingCost) {
  const auto topo = Topology::mesh2d(4);
  NetworkParams p = plain();
  p.chunk_bytes = 64;
  p.chunk_process_cycles = 1;
  Network net(topo, p);
  // 128 bytes = 2 chunks -> +2 cycles on the single hop.
  EXPECT_EQ(net.send(0, 1, 128, 0), ticks(2 + 2));
}

TEST(Network, ContentionQueuesSecondMessage) {
  const auto topo = Topology::mesh2d(4);
  Network net(topo, plain());
  const Tick a = net.send(0, 1, 1280, 0);  // occupies link for 10 cycles
  const Tick b = net.send(0, 1, 1280, 0);  // queued behind a
  EXPECT_EQ(a, ticks(11));
  EXPECT_EQ(b, ticks(21));
  EXPECT_EQ(net.stats().contention_ticks, ticks(10));
}

TEST(Network, ContentionDirectionsAreIndependent) {
  const auto topo = Topology::mesh2d(4);
  Network net(topo, plain());
  const Tick fwd = net.send(0, 1, 1280, 0);
  const Tick rev = net.send(1, 0, 1280, 0);  // full duplex: no queueing
  EXPECT_EQ(fwd, rev);
  EXPECT_EQ(net.stats().contention_ticks, 0u);
}

TEST(Network, ContentionCanBeDisabled) {
  const auto topo = Topology::mesh2d(4);
  NetworkParams p = plain();
  p.model_contention = false;
  Network net(topo, p);
  const Tick a = net.send(0, 1, 1280, 0);
  const Tick b = net.send(0, 1, 1280, 0);
  EXPECT_EQ(a, b);
}

TEST(Network, EstimateDoesNotBook) {
  const auto topo = Topology::mesh2d(4);
  Network net(topo, plain());
  const Tick e1 = net.estimate(0, 1, 1280, 0);
  const Tick e2 = net.estimate(0, 1, 1280, 0);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(net.stats().messages, 0u);
}

TEST(Network, PerPairArrivalMonotonicity) {
  // FIFO property the engine relies on (paper SS II-B): messages from
  // one core to another arrive in send order, under arbitrary cross
  // traffic.
  const auto topo = Topology::mesh2d(16);
  Network net(topo);
  Rng rng(3);
  Tick depart = 0;
  Tick last_arrival = 0;
  for (int i = 0; i < 500; ++i) {
    // Cross traffic on random pairs.
    (void)net.send(static_cast<CoreId>(rng.below(16)),
                   static_cast<CoreId>(rng.below(16)),
                   static_cast<std::uint32_t>(rng.below(4096)), depart);
    // Monitored pair 0 -> 15.
    const Tick arrival = net.send(
        0, 15, static_cast<std::uint32_t>(rng.below(4096)), depart);
    EXPECT_GE(arrival, last_arrival);
    last_arrival = arrival;
    depart += rng.below(50);
  }
}

TEST(Network, StatsAccumulate) {
  const auto topo = Topology::mesh2d(4);
  Network net(topo, plain());
  (void)net.send(0, 3, 100, 0);
  (void)net.send(1, 2, 50, 0);
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().bytes, 150u);
  EXPECT_GE(net.stats().hops, 3u);
  net.reset();
  EXPECT_EQ(net.stats().messages, 0u);
}

TEST(Network, SlowLinkDominatesPath) {
  Topology t(3);
  t.add_link(0, 1, LinkProps{ticks(1), 128});
  t.add_link(1, 2, LinkProps{ticks(10), 128});
  Network net(t, plain());
  EXPECT_EQ(net.send(0, 2, 128, 0), ticks(1 + 1) + ticks(10 + 1));
}

TEST(Network, HalfCycleLatencySupported) {
  Topology t(2);
  t.add_link(0, 1, LinkProps{kTicksPerCycle / 2, 128});
  Network net(t, plain());
  EXPECT_EQ(net.send(0, 1, 128, 0), kTicksPerCycle / 2 + ticks(1));
}

}  // namespace
}  // namespace simany::net
