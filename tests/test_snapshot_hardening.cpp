// Adversarial corpus for the snapshot reader (src/snapshot).
//
// Same posture as test_config_hardening.cpp: every malformed input —
// truncations at every prefix length, flipped magic/version bytes,
// oversized length prefixes, corrupted digests, trailing garbage —
// must surface as a structured SimError{kSnapshotCorrupt}, never as
// undefined behavior. The suite runs under ASan/UBSan in the snapshot
// CI job, so an over-read or wild allocation fails loudly.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/sim_error.h"
#include "dwarfs/dwarfs.h"
#include "snapshot/plan.h"
#include "snapshot/snapshot.h"

namespace simany {
namespace {

using Bytes = std::vector<std::uint8_t>;

/// A small but fully valid container, built without an engine: the
/// reader's structural checks don't care what the image encodes.
Bytes valid_container() {
  snapshot::SnapshotFile f;
  f.header.config_fp = 0x1111111111111111ULL;
  f.header.workload_fp = 0x2222222222222222ULL;
  f.header.seed = 17;
  f.header.mode = 0;
  f.header.flags = snapshot::kFlagTelemetry;
  f.header.shards = 4;
  f.header.round_quanta = 512;
  f.header.num_cores = 16;
  f.header.cursor_requested = 100;
  f.header.every_quanta = 0;
  f.header.cursor_actual = 128;
  f.header.host_rounds = 9;
  for (int i = 0; i < 200; ++i) {
    f.image.push_back(static_cast<std::uint8_t>(i * 7 + 3));
  }
  return snapshot::encode_snapshot(f);
}

void expect_corrupt(const Bytes& data, const char* what) {
  try {
    (void)snapshot::decode_snapshot(data.data(), data.size());
    FAIL() << what << ": decode accepted malformed input";
  } catch (const SimError& e) {
    EXPECT_EQ(e.context().code, SimErrorCode::kSnapshotCorrupt) << what;
  }
  // Anything else (std::bad_alloc, std::length_error, a sanitizer
  // abort) escapes and fails the test, which is the point.
}

TEST(SnapshotHardening, ValidContainerRoundTrips) {
  const Bytes data = valid_container();
  const snapshot::SnapshotFile f =
      snapshot::decode_snapshot(data.data(), data.size());
  EXPECT_EQ(f.header.seed, 17u);
  EXPECT_EQ(f.header.shards, 4u);
  EXPECT_EQ(f.header.cursor_actual, 128u);
  EXPECT_EQ(f.image.size(), 200u);
}

TEST(SnapshotHardening, EveryTruncationIsStructuredError) {
  const Bytes data = valid_container();
  // Every prefix of the container, including the empty file, must be
  // rejected cleanly; no prefix of a valid file is itself valid.
  for (std::size_t n = 0; n < data.size(); ++n) {
    Bytes cut(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(n));
    expect_corrupt(cut, "truncation");
  }
}

TEST(SnapshotHardening, EverySingleByteFlipIsRejected) {
  const Bytes data = valid_container();
  // The trailing file digest covers every byte, so any single-bit
  // corruption anywhere must be caught — either by a targeted check
  // (magic, version, length prefix) or by the digest of last resort.
  for (std::size_t i = 0; i < data.size(); ++i) {
    Bytes bad = data;
    bad[i] ^= 0x40;
    expect_corrupt(bad, "byte flip");
  }
}

TEST(SnapshotHardening, BadMagicIsRejected) {
  Bytes bad = valid_container();
  std::memcpy(bad.data(), "NOTASNAP", 8);
  expect_corrupt(bad, "bad magic");
}

TEST(SnapshotHardening, FutureVersionIsRefusedWithDetail) {
  Bytes bad = valid_container();
  // Bump the version field and re-seal the file digest so the refusal
  // is provably the version check, not the checksum.
  bad[8] = static_cast<std::uint8_t>(snapshot::kFormatVersion + 1);
  const std::size_t body = bad.size() - 8;
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < body; ++i) {
    h ^= bad[i];
    h *= 1099511628211ULL;
  }
  for (int i = 0; i < 8; ++i) {
    bad[body + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((h >> (i * 8)) & 0xffu);
  }
  try {
    (void)snapshot::decode_snapshot(bad.data(), bad.size());
    FAIL() << "future version accepted";
  } catch (const SimError& e) {
    EXPECT_EQ(e.context().code, SimErrorCode::kSnapshotCorrupt);
    EXPECT_EQ(e.context().detail, snapshot::kFormatVersion + 1u);
  }
}

TEST(SnapshotHardening, OversizedHeaderPrefixIsRejected) {
  Bytes bad = valid_container();
  // header_bytes lives right after magic+version; claim 4 GiB.
  bad[12] = 0xff;
  bad[13] = 0xff;
  bad[14] = 0xff;
  bad[15] = 0xff;
  expect_corrupt(bad, "oversized header prefix");
}

TEST(SnapshotHardening, OversizedImagePrefixIsRejected) {
  Bytes data = valid_container();
  // image_bytes is the u64 right after the header block.
  const std::size_t off = 16 + (data[12] | (data[13] << 8) |
                                (data[14] << 16) |
                                (static_cast<std::uint32_t>(data[15]) << 24));
  ASSERT_LT(off + 8, data.size());
  for (int i = 0; i < 8; ++i) {
    data[off + static_cast<std::size_t>(i)] = 0xff;
  }
  expect_corrupt(data, "oversized image prefix");
}

TEST(SnapshotHardening, TrailingGarbageIsRejected) {
  Bytes bad = valid_container();
  bad.push_back(0x00);
  expect_corrupt(bad, "trailing garbage");
}

TEST(SnapshotHardening, UnknownHeaderExtensionIsRefused) {
  // A header block longer than the v1 field set means a newer writer:
  // forward refusal, not a silent partial parse.
  snapshot::SnapshotFile f;
  f.header.num_cores = 8;
  f.image = {1, 2, 3};
  Bytes data = snapshot::encode_snapshot(f);
  const std::uint32_t header_bytes =
      data[12] | (data[13] << 8) | (data[14] << 16) |
      (static_cast<std::uint32_t>(data[15]) << 24);
  // Splice one extra byte into the header block and re-declare its
  // length; leave the digests stale — but the length check must fire
  // first either way, so also re-seal to prove it.
  Bytes bad(data.begin(), data.begin() + 16);
  const std::uint32_t grown = header_bytes + 1;
  bad[12] = static_cast<std::uint8_t>(grown & 0xffu);
  bad[13] = static_cast<std::uint8_t>((grown >> 8) & 0xffu);
  bad[14] = static_cast<std::uint8_t>((grown >> 16) & 0xffu);
  bad[15] = static_cast<std::uint8_t>((grown >> 24) & 0xffu);
  bad.insert(bad.end(), data.begin() + 16, data.begin() + 16 + header_bytes);
  bad.push_back(0xEE);  // the "extension" field
  bad.insert(bad.end(), data.begin() + 16 + header_bytes, data.end() - 8);
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : bad) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  for (int i = 0; i < 8; ++i) {
    bad.push_back(static_cast<std::uint8_t>((h >> (i * 8)) & 0xffu));
  }
  expect_corrupt(bad, "unknown header extension");
}

TEST(SnapshotHardening, MissingFileIsStructuredError) {
  try {
    (void)snapshot::read_snapshot_file("/nonexistent/simany.snap");
    FAIL() << "missing file accepted";
  } catch (const SimError& e) {
    EXPECT_EQ(e.context().code, SimErrorCode::kSnapshotCorrupt);
  }
}

TEST(SnapshotHardening, RestoreFromCorruptFileOnDiskIsStructured) {
  // End to end: a real engine-written snapshot, corrupted on disk,
  // must refuse at restore_from with the structural error.
  const std::string path = ::testing::TempDir() + "simany_corrupt.snap";
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  const std::uint64_t wf = snapshot::workload_fingerprint("spmxv", 17, 0.04);
  {
    Engine sim(cfg);
    snapshot::SnapshotPlan plan;
    plan.path = path;
    plan.at_quanta = 10;
    plan.workload_fp = wf;
    sim.snapshot_to(plan);
    (void)sim.run(dwarfs::dwarf_by_name("spmxv").make_root(17, 0.04));
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(40);  // somewhere inside the header block
    const char x = '\x5a';
    f.write(&x, 1);
  }
  Engine sim(cfg);
  try {
    sim.restore_from(path, wf);
    FAIL() << "corrupt on-disk snapshot accepted";
  } catch (const SimError& e) {
    EXPECT_EQ(e.context().code, SimErrorCode::kSnapshotCorrupt);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simany
