// Dwarfs on non-mesh interconnects: the engine must be topology-
// agnostic (paper SS III: "SiMany can handle arbitrary network
// organizations").
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"
#include "dwarfs/dwarfs.h"

namespace simany {
namespace {

constexpr double kTiny = 0.04;

struct TopoCase {
  const char* name;
  net::Topology (*make)(std::uint32_t);
};

class DwarfsOnTopologies
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 public:
  static const std::vector<TopoCase>& topologies() {
    static const std::vector<TopoCase> cases = {
        {"ring", [](std::uint32_t c) { return net::Topology::ring(c); }},
        {"torus",
         [](std::uint32_t c) { return net::Topology::torus2d(c); }},
        {"crossbar",
         [](std::uint32_t c) { return net::Topology::crossbar(c); }},
    };
    return cases;
  }
};

TEST_P(DwarfsOnTopologies, RunsAndVerifies) {
  const auto [dwarf, topo_idx] = GetParam();
  const TopoCase& tc = topologies()[topo_idx];
  ArchConfig cfg = ArchConfig::distributed_mesh(16);
  cfg.topology = tc.make(16);
  Engine sim(std::move(cfg));
  // Dwarfs self-verify; a wrong result throws.
  const auto stats =
      sim.run(dwarfs::dwarf_by_name(dwarf).make_root(5, kTiny));
  EXPECT_GT(stats.completion_cycles(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DwarfsOnTopologies,
    ::testing::Combine(::testing::Values("dijkstra", "quicksort", "spmxv",
                                         "octree"),
                       ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, int>>& info) {
      std::string n = std::get<0>(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n + "_" +
             DwarfsOnTopologies::topologies()[std::get<1>(info.param)]
                 .name;
    });

TEST(EngineOrdering, SameSenderTasksArriveInSpawnOrder) {
  // Paper SS II-B: "a core receives all messages coming from another
  // given core in the order the latter sent them". Observable as task
  // execution order on a 2-core line: queued FIFO, run FIFO.
  ArchConfig cfg = ArchConfig::shared_mesh(2);
  cfg.runtime.task_queue_capacity = 8;
  Engine sim(cfg);
  std::vector<int> order;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 6; ++i) {
      if (ctx.probe()) {
        ctx.spawn(g, [&order, i](TaskCtx&) { order.push_back(i); });
      }
    }
    ctx.join(g);
  });
  ASSERT_GE(order.size(), 2u);
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_LT(order[k - 1], order[k]);
  }
}

TEST(EngineOrdering, QueueCapacityOneStillWorks) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.runtime.task_queue_capacity = 1;
  Engine sim(cfg);
  int done = 0;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 16; ++i) {
      spawn_or_run(ctx, g, [&done](TaskCtx& c) {
        c.compute(100);
        ++done;
      });
    }
    ctx.join(g);
  });
  EXPECT_EQ(done, 16);
}

TEST(EngineOrdering, EmptyRootTaskCompletes) {
  Engine sim(ArchConfig::shared_mesh(4));
  const auto stats = sim.run([](TaskCtx&) {});
  EXPECT_EQ(stats.completion_cycles(), 10u);  // task-start overhead only
}

TEST(EngineOrdering, MassiveFanoutStress) {
  // Flat fan-out from one producer: diffusion depth is set by the task
  // queue capacity (pressure must build for push-migration to forward
  // work). With capacity 8, work must reach far beyond core 0's direct
  // neighbors; with the default 2 it stays in the first rings.
  auto run = [](std::uint32_t capacity) {
    ArchConfig cfg = ArchConfig::shared_mesh(64);
    cfg.runtime.task_queue_capacity = capacity;
    Engine sim(cfg);
    int done = 0;
    const auto stats = sim.run([&](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < 2000; ++i) {
        spawn_or_run(ctx, g, [&done](TaskCtx& c) {
          c.compute(2000);
          ++done;
        });
      }
      ctx.join(g);
    });
    EXPECT_EQ(done, 2000);
    std::size_t busy = 0;
    for (Tick b : stats.core_busy_ticks) {
      if (b > 0) ++busy;
    }
    return std::pair{busy, stats.completion_ticks};
  };
  const auto [busy2, vt2] = run(2);
  const auto [busy8, vt8] = run(8);
  EXPECT_GT(busy2, 3u);
  EXPECT_GT(busy8, 16u);
  EXPECT_LT(vt8, vt2);  // deeper diffusion -> faster virtual time
}

TEST(EngineOrdering, BeyondPaperScaleTwoThousandCores) {
  // The paper validates to 64 cores and explores to 1024; the engine
  // itself must keep working beyond that ("more than a thousand
  // cores", SS abstract). 2048-core mesh, octree dwarf.
  Engine sim(ArchConfig::shared_mesh(2048));
  const auto stats =
      sim.run(dwarfs::dwarf_by_name("octree").make_root(3, 0.1));
  EXPECT_GT(stats.completion_cycles(), 0u);
  EXPECT_EQ(stats.core_busy_ticks.size(), 2048u);
}

TEST(EngineOrdering, SingleCoreRingIsDegenerate) {
  // 2-core ring (one link): everything must still work.
  ArchConfig cfg = ArchConfig::shared_mesh(2);
  cfg.topology = net::Topology::ring(2);
  Engine sim(std::move(cfg));
  int done = 0;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 4; ++i) {
      spawn_or_run(ctx, g, [&done](TaskCtx& c) {
        c.compute(10);
        ++done;
      });
    }
    ctx.join(g);
  });
  EXPECT_EQ(done, 4);
}

}  // namespace
}  // namespace simany
