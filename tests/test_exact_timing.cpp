// Exact virtual-time accounting for the run-time protocols, computed
// by hand from the model formulas. These pin the timing composition:
// if a cost constant or formula changes intentionally, update the
// arithmetic here alongside it.
//
// Network formula per hop (defaults: latency 1 cycle, bandwidth
// 128 B/c, router penalty 1 cycle, chunk 64 B with 1 cycle/chunk):
//   arrival = depart + latency + ceil(bytes/bw) + chunks + router
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"

namespace simany {
namespace {

// One hop for a `b`-byte message on the default network.
constexpr Cycles hop(std::uint32_t b) {
  return 1 /*latency*/ + (b + 127) / 128 /*serialization*/ +
         (b + 63) / 64 /*chunk processing*/ + 1 /*router*/;
}

TEST(ExactTiming, SpawnOnNeighborFullAccounting) {
  // Root on core 0 of a 2-core machine probes, spawns a 64-byte task,
  // child computes 100, root joins.
  Engine sim(ArchConfig::shared_mesh(2));
  const auto stats = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    ASSERT_TRUE(ctx.probe());
    ctx.spawn(g, [](TaskCtx& c) { c.compute(100); });
    ctx.join(g);
  });

  // Hand computation (all on default constants):
  //   t=10  root task start (task_start_cycles)
  //   PROBE (8 B): arrives 10 + hop(8) = 14
  //   target handles: max(0,14) + msg_handle(2) = 16; ACK departs 16
  //   ACK arrives 16 + hop(8) = 20 -> root at 20
  //   TASK_SPAWN (64 B) departs 20, arrives 20 + hop(64) = 24
  //   target handles: max(16,24) + 2 = 26 -> task queued at 26
  //   child starts: 26 + task_start(10) = 36; computes -> 136
  //   child ends; JOINER_REQUEST (8 B) departs 136, arrives 136+hop(8)=140
  //   root handles: max(20,140) + 2 = 142; joiner resumes +15 = 157
  ASSERT_EQ(hop(8), 4u);
  ASSERT_EQ(hop(64), 4u);
  EXPECT_EQ(stats.completion_cycles(), 157u);
}

TEST(ExactTiming, RemoteLockRoundTrip) {
  // Lock homed on core 0; the root immediately locks/unlocks it
  // locally (distributed local path charges one L2 access each way).
  Engine sim(ArchConfig::distributed_mesh(2));
  const auto stats = sim.run([](TaskCtx& ctx) {
    const LockId lk = ctx.make_lock();
    ctx.lock(lk);    // local: +10 (L2)
    ctx.unlock(lk);  // local: +10
  });
  // 10 (task start) + 10 + 10.
  EXPECT_EQ(stats.completion_cycles(), 30u);
}

TEST(ExactTiming, RemoteCellAcquireRelease) {
  // Cell of 256 bytes homed on core 1; root (core 0) acquires for
  // write and releases.
  Engine sim(ArchConfig::distributed_mesh(2));
  const auto stats = sim.run([](TaskCtx& ctx) {
    const CellId cell = ctx.make_cell_at(256, 1);
    ctx.cell_acquire(cell, AccessMode::kWrite);
    ctx.cell_release(cell);
  });
  // t=10 start.
  // DATA_REQUEST (8 B) departs 10, arrives 14; home: 14+2=16.
  // DATA_RESPONSE (256 B: ser 2, chunks 4) hop = 1+2+4+1 = 8.
  //   departs 16, arrives 24. Requester: max(10,24) + L2(10) = 34.
  // CELL_RELEASE (256 B, write-back) departs 34 (async; does not delay
  //   the task). Completion = root's end = 34.
  ASSERT_EQ(hop(256), 8u);
  EXPECT_EQ(stats.completion_cycles(), 34u);
}

TEST(ExactTiming, LockAcquisitionFollowsSimulationOrderNotVirtualTime) {
  // Paper SS II-B: the simulator may process lock acquisitions out of
  // virtual-time order — programs must be correct for every order.
  // Here the root holds the lock across a 500-cycle critical section;
  // the holder exemption lets it race to its release in *simulation*
  // order before the child even attempts the lock, so the child
  // acquires at a *lower virtual time* than the root's release. This
  // documents (and pins) the lax semantics.
  Engine sim(ArchConfig::shared_mesh(2));
  Cycles waiter_got_lock = 0;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    const LockId lk = ctx.make_lock();
    ctx.lock(lk);
    ASSERT_TRUE(ctx.probe());
    ctx.spawn(g, [&, lk](TaskCtx& c) {
      c.lock(lk);
      waiter_got_lock = c.now_cycles();
      c.unlock(lk);
    });
    ctx.compute(500);  // exempt from stalls while holding
    ctx.unlock(lk);    // releases at vt > 530
    ctx.join(g);
  });
  EXPECT_GT(waiter_got_lock, 0u);
  EXPECT_LT(waiter_got_lock, 500u);  // acquired "before" the release
}

TEST(ExactTiming, MessageSerializationScalesWithPayload) {
  // Spawn messages of growing arg_bytes arrive later: completion time
  // strictly increases with payload size for a remote child.
  auto completion = [](std::uint32_t arg_bytes) {
    Engine sim(ArchConfig::shared_mesh(2));
    return sim
        .run([arg_bytes](TaskCtx& ctx) {
          const GroupId g = ctx.make_group();
          ASSERT_TRUE(ctx.probe());
          ctx.spawn(g, [](TaskCtx&) {}, arg_bytes);
          ctx.join(g);
        })
        .completion_ticks;
  };
  const Tick small = completion(64);
  const Tick medium = completion(1024);
  const Tick large = completion(16384);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  // 16384 B at 128 B/c costs 128 cycles of serialization + 256 chunk
  // cycles vs ~3 for 64 B: difference must exceed 300 cycles.
  EXPECT_GT(cycles_floor(large - small), 300u);
}

}  // namespace
}  // namespace simany
