// Snapshot/restore equivalence suite (src/snapshot).
//
// The contract under test: a run that writes a snapshot, and a run
// that restores from it and continues, must both be bit-identical —
// in architectural statistics, telemetry fingerprints and (for the
// sequential host) the full event trace — to the same run left
// uninterrupted. The property is swept over seeds, topologies,
// dwarfs, host backends and fault plans; the cross-product rides the
// `chaos` ctest label, a handful of fast cases stay tier-1.
//
// Host-side fields (host_rounds, wall_seconds, host_threads_used) are
// excluded from the comparison by design: arming a snapshot caps the
// sequential host's round budget so a barrier lands exactly on the
// requested quanta cursor, which adds barrier visits without touching
// the simulated timeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <tuple>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/sim_error.h"
#include "dwarfs/dwarfs.h"
#include "obs/telemetry.h"
#include "snapshot/plan.h"
#include "snapshot/snapshot.h"
#include "stats/trace_sinks.h"

namespace simany {
namespace {

constexpr double kTiny = 0.04;

/// FNV-1a over every architectural SimStats field. Deliberately leaves
/// out host_rounds / wall_seconds / host_threads_used (see file
/// comment); everything else must match bit-for-bit.
std::uint64_t arch_fingerprint(const SimStats& s) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 1099511628211ULL;
    }
  };
  mix(s.completion_ticks);
  mix(s.tasks_spawned);
  mix(s.tasks_inlined);
  mix(s.tasks_migrated);
  mix(s.probes_sent);
  mix(s.probes_denied);
  mix(s.messages);
  mix(s.sync_stalls);
  mix(s.fiber_switches);
  mix(s.joins_suspended);
  mix(s.limit_recomputes);
  mix(s.faults_injected);
  mix(s.fault_msgs_delayed);
  mix(s.fault_msgs_duplicated);
  mix(s.fault_msgs_dropped);
  mix(s.fault_msg_retries);
  mix(s.fault_msgs_reordered);
  mix(s.fault_core_stalls);
  mix(s.fault_spawn_denials);
  mix(s.fault_mem_spikes);
  mix(s.fault_core_wedges);
  mix(s.fault_dead_cores);
  mix(s.guard_inbox_overflows);
  mix(s.guard_fiber_overflows);
  mix(s.inbox_depth_peak);
  mix(s.live_fibers_peak);
  mix(s.parallelism_samples);
  mix(s.parallelism_sum);
  mix(s.parallelism_max);
  mix(s.drift_max_ticks);
  mix(s.inbox_heap_allocs);
  mix(s.network.messages);
  mix(s.network.bytes);
  mix(s.network.hops);
  mix(s.network.contention_ticks);
  for (const Tick t : s.core_busy_ticks) mix(t);
  return h;
}

enum class Host { kSeq, kPar1, kPar4 };

void apply_host(ArchConfig& cfg, Host h) {
  switch (h) {
    case Host::kSeq:
      break;
    case Host::kPar1:
      cfg.host.mode = HostMode::kParallel;
      cfg.host.threads = 1;
      cfg.host.shards = 1;
      break;
    case Host::kPar4:
      cfg.host.mode = HostMode::kParallel;
      cfg.host.threads = 2;  // 4 shards; 2 workers keeps CI load sane
      cfg.host.shards = 4;
      break;
  }
}

ArchConfig topology(int i) {
  switch (i) {
    case 0:
      return ArchConfig::shared_mesh(16);
    case 1:
      return ArchConfig::distributed_mesh(16);
    case 2:
      return ArchConfig::shared_mesh(8);
    default:
      return ArchConfig::clustered(ArchConfig::shared_mesh(16), 4);
  }
}

fault::FaultPlan chaos_plan() {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.msg_delay_prob = 0.05;
  plan.msg_dup_prob = 0.03;
  plan.msg_drop_prob = 0.03;  // masked by the retry path
  plan.stall_prob = 0.02;
  plan.spawn_fail_prob = 0.05;
  plan.mem_spike_prob = 0.02;
  return plan;
}

std::string temp_snapshot_path(std::string tag) {
  for (auto& ch : tag) {
    if (ch == '/') ch = '_';  // parameterized test names carry a slash
  }
  return ::testing::TempDir() + "simany_" + tag + ".snap";
}

struct RunResult {
  std::uint64_t stats_fp = 0;
  std::uint64_t telemetry_fp = 0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

/// One full run: baseline when both plan and resume are null, writer
/// when `plan` is set, restored continuation when `resume` is set.
RunResult run_once(const ArchConfig& cfg, const char* dwarf,
                   std::uint64_t seed,
                   const snapshot::SnapshotPlan* plan = nullptr,
                   const std::string* resume = nullptr,
                   std::uint64_t workload_fp = 0) {
  Engine sim(cfg);
  obs::Telemetry tel;
  sim.set_telemetry(&tel);
  if (plan != nullptr) sim.snapshot_to(*plan);
  if (resume != nullptr) sim.restore_from(*resume, workload_fp);
  const SimStats st =
      sim.run(dwarfs::dwarf_by_name(dwarf).make_root(seed, kTiny));
  return RunResult{arch_fingerprint(st),
                   tel.fingerprint(obs::EventClass::kAll)};
}

// ---- The property sweep (chaos label: `ctest -L snapshot -L chaos`) --

using SweepParam = std::tuple<std::uint64_t, int, const char*, Host, bool>;

class SnapshotSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SnapshotSweep, InterruptedEqualsUninterrupted) {
  const auto [seed, topo_i, dwarf, host, faulty] = GetParam();
  ArchConfig cfg = topology(topo_i);
  apply_host(cfg, host);
  if (faulty) cfg.fault = chaos_plan();

  const std::uint64_t wf = snapshot::workload_fingerprint(dwarf, seed, kTiny);
  const std::string path = temp_snapshot_path(
      ::testing::UnitTest::GetInstance()->current_test_info()->name());

  const RunResult base = run_once(cfg, dwarf, seed);

  snapshot::SnapshotPlan plan;
  plan.path = path;
  plan.at_quanta = 5;  // early cursor; falls back to final state if the
                       // run is shorter, which the property tolerates
  plan.workload_fp = wf;
  const RunResult writer = run_once(cfg, dwarf, seed, &plan);
  EXPECT_EQ(base, writer) << "arming a snapshot perturbed the run";

  const RunResult resumed =
      run_once(cfg, dwarf, seed, nullptr, &path, wf);
  EXPECT_EQ(base, resumed) << "restored run diverged from baseline";

  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Equivalence, SnapshotSweep,
    ::testing::Combine(
        ::testing::Values(std::uint64_t{17}, std::uint64_t{23}),
        ::testing::Values(0, 1, 2, 3),
        ::testing::Values("quicksort", "spmxv"),
        ::testing::Values(Host::kSeq, Host::kPar1, Host::kPar4),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const Host host = std::get<3>(info.param);
      std::ostringstream n;
      n << "s" << std::get<0>(info.param) << "_t" << std::get<1>(info.param)
        << "_" << std::get<2>(info.param) << "_"
        << (host == Host::kSeq ? "seq"
                               : (host == Host::kPar1 ? "par1" : "par4"))
        << (std::get<4>(info.param) ? "_fault" : "_clean");
      std::string s = n.str();
      for (auto& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

// ---- Fast tier-1 cases ----------------------------------------------

TEST(Snapshot, SeqOneShotRoundTrip) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  const std::uint64_t wf =
      snapshot::workload_fingerprint("quicksort", 17, kTiny);
  const std::string path = temp_snapshot_path("seq_oneshot");

  const RunResult base = run_once(cfg, "quicksort", 17);

  snapshot::SnapshotPlan plan;
  plan.path = path;
  plan.at_quanta = 40;
  plan.workload_fp = wf;
  const RunResult writer = run_once(cfg, "quicksort", 17, &plan);
  EXPECT_EQ(base, writer);

  const snapshot::SnapshotFile f = snapshot::read_snapshot_file(path);
  EXPECT_EQ(f.header.workload_fp, wf);
  EXPECT_GE(f.header.cursor_actual, plan.at_quanta);

  const RunResult resumed = run_once(cfg, "quicksort", 17, nullptr, &path, wf);
  EXPECT_EQ(base, resumed);
  std::remove(path.c_str());
}

TEST(Snapshot, Par4SnapshotRestoresIntoSeqEngine) {
  // The acceptance-criteria case: a snapshot captured under par-4
  // restores into an engine constructed sequential. The restore adopts
  // the snapshot's shard geometry (4 shards, inline on one worker),
  // which the host-determinism contract makes bit-identical to the
  // threaded original.
  ArchConfig par = ArchConfig::distributed_mesh(16);
  apply_host(par, Host::kPar4);
  const std::uint64_t wf = snapshot::workload_fingerprint("spmxv", 23, kTiny);
  const std::string path = temp_snapshot_path("par4_to_seq");

  const RunResult base = run_once(par, "spmxv", 23);

  snapshot::SnapshotPlan plan;
  plan.path = path;
  plan.at_quanta = 20;
  plan.workload_fp = wf;
  const RunResult writer = run_once(par, "spmxv", 23, &plan);
  EXPECT_EQ(base, writer);

  ArchConfig seq = ArchConfig::distributed_mesh(16);  // sequential host
  const RunResult resumed = run_once(seq, "spmxv", 23, nullptr, &path, wf);
  EXPECT_EQ(base, resumed)
      << "par-4 snapshot must replay bit-identically on one worker";
  std::remove(path.c_str());
}

TEST(Snapshot, PeriodicCadenceCapturesAndResumes) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  const std::uint64_t wf =
      snapshot::workload_fingerprint("quicksort", 31, kTiny);
  const std::string path = temp_snapshot_path("periodic");

  const RunResult base = run_once(cfg, "quicksort", 31);

  snapshot::SnapshotPlan plan;
  plan.path = path;
  plan.every_quanta = 16;  // periodic-only: overwrites in place
  plan.workload_fp = wf;
  const RunResult writer = run_once(cfg, "quicksort", 31, &plan);
  EXPECT_EQ(base, writer);

  const snapshot::SnapshotFile f = snapshot::read_snapshot_file(path);
  EXPECT_EQ(f.header.every_quanta, 16u);

  const RunResult resumed = run_once(cfg, "quicksort", 31, nullptr, &path, wf);
  EXPECT_EQ(base, resumed);
  std::remove(path.c_str());
}

TEST(Snapshot, CursorPastEndCapturesFinalState) {
  // A one-shot target past the end of the run still leaves a usable
  // file: the writer captures the final quiesced state, and the
  // restore replays the whole run under byte-verification.
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  const std::uint64_t wf = snapshot::workload_fingerprint("spmxv", 17, kTiny);
  const std::string path = temp_snapshot_path("past_end");

  const RunResult base = run_once(cfg, "spmxv", 17);

  snapshot::SnapshotPlan plan;
  plan.path = path;
  plan.at_quanta = ~std::uint64_t{0} / 2;
  plan.workload_fp = wf;
  const RunResult writer = run_once(cfg, "spmxv", 17, &plan);
  EXPECT_EQ(base, writer);

  const RunResult resumed = run_once(cfg, "spmxv", 17, nullptr, &path, wf);
  EXPECT_EQ(base, resumed);
  std::remove(path.c_str());
}

TEST(Snapshot, TraceIsByteIdenticalAfterResume) {
  // Sequential host with a CSV trace attached on both sides: the
  // restored continuation must emit the exact same event stream.
  const std::uint64_t wf =
      snapshot::workload_fingerprint("quicksort", 17, kTiny);
  const std::string path = temp_snapshot_path("trace_equiv");

  const auto traced_run = [&](bool write,
                              bool resume) -> std::string {
    ArchConfig cfg = ArchConfig::shared_mesh(8);
    Engine sim(cfg);
    std::ostringstream csv_out;
    stats::CsvTrace csv(csv_out);
    sim.set_trace(&csv);
    snapshot::SnapshotPlan plan;
    plan.path = path;
    plan.at_quanta = 24;
    plan.workload_fp = wf;
    if (write) sim.snapshot_to(plan);
    if (resume) sim.restore_from(path, wf);
    (void)sim.run(dwarfs::dwarf_by_name("quicksort").make_root(17, kTiny));
    return csv_out.str();
  };

  const std::string base = traced_run(false, false);
  const std::string writer = traced_run(true, false);
  EXPECT_EQ(base, writer);
  const std::string resumed = traced_run(false, true);
  EXPECT_EQ(base, resumed);
  std::remove(path.c_str());
}

TEST(Snapshot, RestoreRefusesWrongWorkload) {
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  const std::uint64_t wf = snapshot::workload_fingerprint("spmxv", 17, kTiny);
  const std::string path = temp_snapshot_path("wrong_workload");
  snapshot::SnapshotPlan plan;
  plan.path = path;
  plan.at_quanta = 10;
  plan.workload_fp = wf;
  (void)run_once(cfg, "spmxv", 17, &plan);

  Engine sim(cfg);
  try {
    sim.restore_from(path,
                     snapshot::workload_fingerprint("quicksort", 17, kTiny));
    FAIL() << "mismatched workload fingerprint must refuse";
  } catch (const SimError& e) {
    EXPECT_EQ(e.context().code, SimErrorCode::kSnapshotMismatch);
  }
  std::remove(path.c_str());
}

TEST(Snapshot, RestoreRefusesWrongConfig) {
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  const std::uint64_t wf = snapshot::workload_fingerprint("spmxv", 17, kTiny);
  const std::string path = temp_snapshot_path("wrong_config");
  snapshot::SnapshotPlan plan;
  plan.path = path;
  plan.at_quanta = 10;
  plan.workload_fp = wf;
  (void)run_once(cfg, "spmxv", 17, &plan);

  Engine other(ArchConfig::shared_mesh(16));
  try {
    other.restore_from(path, wf);
    FAIL() << "mismatched config fingerprint must refuse";
  } catch (const SimError& e) {
    EXPECT_EQ(e.context().code, SimErrorCode::kSnapshotMismatch);
  }
  std::remove(path.c_str());
}

TEST(Snapshot, RestoreRefusesMissingTelemetry) {
  // The capture run had telemetry attached (its buffers are part of
  // the verified image), so a restore without it cannot replay.
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  const std::uint64_t wf = snapshot::workload_fingerprint("spmxv", 17, kTiny);
  const std::string path = temp_snapshot_path("missing_telemetry");
  snapshot::SnapshotPlan plan;
  plan.path = path;
  plan.at_quanta = 10;
  plan.workload_fp = wf;
  (void)run_once(cfg, "spmxv", 17, &plan);  // writer attaches telemetry

  Engine sim(cfg);  // no telemetry this time
  try {
    sim.restore_from(path, wf);
    FAIL() << "telemetry-flag mismatch must refuse";
  } catch (const SimError& e) {
    EXPECT_EQ(e.context().code, SimErrorCode::kSnapshotMismatch);
  }
  std::remove(path.c_str());
}

TEST(Snapshot, SnapshotToRejectsEmptyPathAndUsedEngine) {
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  snapshot::SnapshotPlan plan;
  EXPECT_THROW(
      {
        Engine sim(cfg);
        sim.snapshot_to(plan);  // empty path
      },
      std::invalid_argument);

  Engine used(cfg);
  (void)used.run(dwarfs::dwarf_by_name("spmxv").make_root(17, kTiny));
  plan.path = temp_snapshot_path("used_engine");
  plan.at_quanta = 1;
  EXPECT_THROW(used.snapshot_to(plan), std::logic_error);
}

}  // namespace
}  // namespace simany
