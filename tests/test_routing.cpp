#include "net/network.h"
#include "net/routing.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace simany::net {
namespace {

// Property sweep: shortest-path invariants must hold on every preset
// topology shape.
struct TopoCase {
  std::string name;
  Topology topo;
};

class RoutingProperties : public ::testing::TestWithParam<int> {
 public:
  static const std::vector<TopoCase>& cases() {
    static const std::vector<TopoCase> cs = [] {
      std::vector<TopoCase> v;
      v.push_back({"mesh16", Topology::mesh2d(16)});
      v.push_back({"mesh8_rect", Topology::mesh2d(8)});
      v.push_back({"ring9", Topology::ring(9)});
      v.push_back({"torus16", Topology::torus2d(16)});
      v.push_back({"crossbar6", Topology::crossbar(6)});
      v.push_back({"clustered16",
                   Topology::clustered_mesh2d(
                       16, 4, LinkProps{6, 128}, LinkProps{48, 128})});
      v.push_back({"single", Topology(1)});
      return v;
    }();
    return cs;
  }
};

TEST_P(RoutingProperties, HopsMatchBfsDistances) {
  const auto& tc = cases()[GetParam()];
  const RoutingTable rt(tc.topo);
  for (CoreId s = 0; s < tc.topo.num_cores(); ++s) {
    const auto dist = tc.topo.distances_from(s);
    for (CoreId d = 0; d < tc.topo.num_cores(); ++d) {
      EXPECT_EQ(rt.hops(s, d), dist[d]) << tc.name;
    }
  }
}

TEST_P(RoutingProperties, NextHopStrictlyApproaches) {
  const auto& tc = cases()[GetParam()];
  const RoutingTable rt(tc.topo);
  for (CoreId s = 0; s < tc.topo.num_cores(); ++s) {
    for (CoreId d = 0; d < tc.topo.num_cores(); ++d) {
      if (s == d) {
        EXPECT_EQ(rt.next_hop(s, d), d);
        continue;
      }
      const CoreId n = rt.next_hop(s, d);
      EXPECT_TRUE(tc.topo.link_between(s, n).has_value()) << tc.name;
      EXPECT_EQ(rt.hops(n, d) + 1, rt.hops(s, d)) << tc.name;
    }
  }
}

TEST_P(RoutingProperties, PathEndsAtDestinationWithHopsLength) {
  const auto& tc = cases()[GetParam()];
  const RoutingTable rt(tc.topo);
  for (CoreId s = 0; s < tc.topo.num_cores(); ++s) {
    for (CoreId d = 0; d < tc.topo.num_cores(); ++d) {
      const auto path = rt.path(s, d);
      EXPECT_EQ(path.size(), rt.hops(s, d)) << tc.name;
      if (s != d) {
        EXPECT_EQ(path.back(), d) << tc.name;
      } else {
        EXPECT_TRUE(path.empty());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, RoutingProperties,
    ::testing::Range(0, static_cast<int>(RoutingProperties::cases().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return RoutingProperties::cases()[info.param].name;
    });

TEST(Routing, DeterministicTieBreaks) {
  const auto topo = Topology::mesh2d(16);
  const RoutingTable a(topo);
  const RoutingTable b(topo);
  for (CoreId s = 0; s < 16; ++s) {
    for (CoreId d = 0; d < 16; ++d) {
      EXPECT_EQ(a.next_hop(s, d), b.next_hop(s, d));
    }
  }
}

TEST(Routing, DisconnectedThrows) {
  Topology t(4);
  t.add_link(0, 1);
  t.add_link(2, 3);
  EXPECT_THROW(RoutingTable{t}, std::invalid_argument);
}

TEST(Routing, LatencyWeightedPrefersFastDetour) {
  // Triangle-ish graph: direct slow link 0-2 (latency 100) vs a fast
  // two-hop path 0-1-2 (latency 1 each). Hop routing takes the direct
  // link; latency routing detours.
  Topology t(3);
  t.add_link(0, 1, LinkProps{ticks(1), 128});
  t.add_link(1, 2, LinkProps{ticks(1), 128});
  t.add_link(0, 2, LinkProps{ticks(100), 128});
  const RoutingTable by_hops(t, RouteWeighting::kHops);
  const RoutingTable by_latency(t, RouteWeighting::kLatency);
  EXPECT_EQ(by_hops.next_hop(0, 2), 2u);
  EXPECT_EQ(by_hops.hops(0, 2), 1u);
  EXPECT_EQ(by_latency.next_hop(0, 2), 1u);
  EXPECT_EQ(by_latency.hops(0, 2), 2u);
  EXPECT_EQ(by_latency.path(0, 2), (std::vector<CoreId>{1, 2}));
}

TEST(Routing, LatencyWeightingMatchesHopsOnUniformLinks) {
  const auto topo = Topology::mesh2d(16);
  const RoutingTable hops(topo, RouteWeighting::kHops);
  const RoutingTable lat(topo, RouteWeighting::kLatency);
  for (CoreId s = 0; s < 16; ++s) {
    for (CoreId d = 0; d < 16; ++d) {
      EXPECT_EQ(hops.hops(s, d), lat.hops(s, d));
    }
  }
}

TEST(Routing, LatencyWeightedNetworkDeliversFaster) {
  // End-to-end: on the detour topology the latency-routed network
  // beats the hop-routed one.
  Topology t(3);
  t.add_link(0, 1, LinkProps{ticks(1), 128});
  t.add_link(1, 2, LinkProps{ticks(1), 128});
  t.add_link(0, 2, LinkProps{ticks(100), 128});
  NetworkParams hop_params;
  NetworkParams lat_params;
  lat_params.routing = RouteWeighting::kLatency;
  Network by_hops(t, hop_params);
  Network by_latency(t, lat_params);
  EXPECT_LT(by_latency.send(0, 2, 64, 0), by_hops.send(0, 2, 64, 0));
}

TEST(Routing, OutOfRangeThrows) {
  const auto topo = Topology::mesh2d(4);
  const RoutingTable rt(topo);
  EXPECT_THROW((void)rt.next_hop(0, 4), std::out_of_range);
  EXPECT_THROW((void)rt.hops(4, 0), std::out_of_range);
}

}  // namespace
}  // namespace simany::net
