#include "core/vtime.h"

#include <gtest/gtest.h>

namespace simany {
namespace {

TEST(VTime, TickConversionRoundTrips) {
  EXPECT_EQ(ticks(0), 0u);
  EXPECT_EQ(ticks(1), kTicksPerCycle);
  EXPECT_EQ(cycles_floor(ticks(123)), 123u);
  EXPECT_EQ(cycles_floor(ticks(123) + kTicksPerCycle - 1), 123u);
}

TEST(VTime, TicksPerCycleSupportsPaperFractions) {
  // 0.5-cycle link latency and 1/2, 3/2 core speeds must be exact.
  EXPECT_EQ(kTicksPerCycle % 2, 0u);
  EXPECT_EQ(kTicksPerCycle % 3, 0u);
  EXPECT_EQ(kTicksPerCycle % 4, 0u);
}

TEST(VTime, ScaledCostUnitSpeed) {
  EXPECT_EQ(scaled_cost(10, Speed{1, 1}), ticks(10));
}

TEST(VTime, ScaledCostSlowCoreDoubles) {
  // Speed 1/2: twice slower, so twice the ticks.
  EXPECT_EQ(scaled_cost(10, Speed{1, 2}), 2 * ticks(10));
}

TEST(VTime, ScaledCostFastCoreShrinks) {
  // Speed 3/2: cost shrinks to 2/3, exactly representable.
  EXPECT_EQ(scaled_cost(9, Speed{3, 2}), ticks(6));
}

TEST(VTime, ScaledCostRoundsUpNeverFree) {
  const Tick t = scaled_cost(1, Speed{3, 1});
  EXPECT_GE(t, 1u);
  EXPECT_EQ(t, (ticks(1) + 2) / 3);
}

TEST(VTime, CyclesFpMatchesFloor) {
  EXPECT_DOUBLE_EQ(cycles_fp(ticks(7)), 7.0);
  EXPECT_DOUBLE_EQ(cycles_fp(kTicksPerCycle / 2), 0.5);
}

TEST(VTime, SatAddSaturatesAtInfinity) {
  EXPECT_EQ(sat_add(1, 2), 3u);
  EXPECT_EQ(sat_add(kTickInfinity, 0), kTickInfinity);
  EXPECT_EQ(sat_add(kTickInfinity, 1), kTickInfinity);
  EXPECT_EQ(sat_add(kTickInfinity, kTickInfinity), kTickInfinity);
  // One below the boundary still adds exactly; at it, pins.
  EXPECT_EQ(sat_add(kTickInfinity - 1, 1), kTickInfinity);
  EXPECT_EQ(sat_add(kTickInfinity - 2, 1), kTickInfinity - 1);
}

TEST(VTime, SatMulSaturatesAtInfinity) {
  EXPECT_EQ(sat_mul(3, 4), 12u);
  EXPECT_EQ(sat_mul(0, kTickInfinity), 0u);
  EXPECT_EQ(sat_mul(kTickInfinity, 0), 0u);
  EXPECT_EQ(sat_mul(kTickInfinity, 1), kTickInfinity);
  EXPECT_EQ(sat_mul(kTickInfinity, 2), kTickInfinity);
  EXPECT_EQ(sat_mul(kTickInfinity / 2, 3), kTickInfinity);
}

TEST(VTime, TicksSaturatesNearInfinity) {
  // A drift bound of "infinite cycles" must not wrap into a tiny,
  // maximally binding tick window.
  EXPECT_EQ(ticks(kTickInfinity), kTickInfinity);
  EXPECT_EQ(ticks(kTickInfinity / kTicksPerCycle + 1), kTickInfinity);
  // The largest exactly representable cycle count still converts.
  const Cycles max_exact = kTickInfinity / kTicksPerCycle;
  EXPECT_EQ(ticks(max_exact), max_exact * kTicksPerCycle);
}

TEST(VTime, ScaledCostClampsInsteadOfWrapping) {
  // A slow core doubles the tick cost; near the representable maximum
  // that must clamp to infinity, not wrap to a small number.
  EXPECT_EQ(scaled_cost(kTickInfinity / kTicksPerCycle, Speed{1, 2}),
            kTickInfinity);
  EXPECT_EQ(scaled_cost(kTickInfinity, Speed{1, 1}), kTickInfinity);
  EXPECT_EQ(scaled_cost(kTickInfinity, Speed{3, 2}), kTickInfinity);
  // Ordinary costs are unaffected by the clamp.
  EXPECT_EQ(scaled_cost(10, Speed{1, 2}), 2 * ticks(10));
}

TEST(VTime, SpeedComparisons) {
  EXPECT_TRUE((Speed{1, 1}).is_unit());
  EXPECT_TRUE((Speed{2, 2}).is_unit());
  EXPECT_FALSE((Speed{1, 2}).is_unit());
  EXPECT_DOUBLE_EQ((Speed{3, 2}).as_double(), 1.5);
}

}  // namespace
}  // namespace simany
