#include "stats/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace simany::stats {
namespace {

TEST(Report, RelError) {
  EXPECT_DOUBLE_EQ(rel_error(11, 10), 0.1);
  EXPECT_DOUBLE_EQ(rel_error(9, 10), 0.1);
  EXPECT_DOUBLE_EQ(rel_error(10, 10), 0.0);
  EXPECT_THROW((void)rel_error(1, 0), std::invalid_argument);
}

TEST(Report, GeoMean) {
  EXPECT_DOUBLE_EQ(geo_mean({4, 9}), 6.0);
  EXPECT_DOUBLE_EQ(geo_mean({5}), 5.0);
  EXPECT_DOUBLE_EQ(geo_mean({}), 0.0);
  EXPECT_THROW((void)geo_mean({1, 0}), std::invalid_argument);
  EXPECT_THROW((void)geo_mean({-1}), std::invalid_argument);
}

TEST(Report, Mean) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Report, FmtRanges) {
  EXPECT_EQ(fmt(0.0), "0");
  EXPECT_EQ(fmt(1.5), "1.5");
  EXPECT_EQ(fmt(123.4), "123.4");
  // Very large/small use scientific notation.
  EXPECT_NE(fmt(1e9).find('e'), std::string::npos);
  EXPECT_NE(fmt(1e-6).find('e'), std::string::npos);
}

TEST(Report, FigureTableRejectsLengthMismatch) {
  FigureTable t("t", "x", {1, 2, 3});
  EXPECT_THROW(t.add_series({"s", {1, 2}}), std::invalid_argument);
}

TEST(Report, FigureTablePrintsAllCells) {
  FigureTable t("My Figure", "cores", {1, 8, 64});
  t.add_series({"alpha", {1.0, 3.5, 7.25}});
  t.add_series({"beta", {1.0, 2.0, 4.0}});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("My Figure"), std::string::npos);
  EXPECT_NE(s.find("cores"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_NE(s.find("7.25"), std::string::npos);
  EXPECT_NE(s.find("64"), std::string::npos);
}

TEST(Report, FigureTableKeepsSeriesOrder) {
  FigureTable t("t", "x", {1});
  t.add_series({"first", {1}});
  t.add_series({"second", {2}});
  ASSERT_EQ(t.series().size(), 2u);
  EXPECT_EQ(t.series()[0].name, "first");
  EXPECT_EQ(t.series()[1].name, "second");
}

}  // namespace
}  // namespace simany::stats
