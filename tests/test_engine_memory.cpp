// Memory-model timing through the engine: exact cycle accounting for
// the pessimistic L1, shared-memory latency, coherence charges and
// polymorphic L1 scaling.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"

namespace simany {
namespace {

Cycles run_cycles(ArchConfig cfg, TaskFn fn,
                  ExecutionMode mode = ExecutionMode::kVirtualTime) {
  Engine sim(std::move(cfg), mode);
  return sim.run(std::move(fn)).completion_cycles();
}

TEST(EngineMemory, L1HitVsMissExactCosts) {
  // Single core, shared memory: first touch of a line costs
  // L1 (1) + shared (10); repeats cost L1 (1).
  const Cycles t = run_cycles(ArchConfig::shared_mesh(1), [](TaskCtx& ctx) {
    ctx.mem_read(0, 8);   // miss: 11
    ctx.mem_read(0, 8);   // hit: 1
    ctx.mem_read(4, 4);   // same line hit: 1
    ctx.mem_read(64, 8);  // new line miss: 11
  });
  EXPECT_EQ(t, 10u + 11 + 1 + 1 + 11);  // + task start 10
}

TEST(EngineMemory, FunctionBoundaryFlushesL1) {
  const Cycles t = run_cycles(ArchConfig::shared_mesh(1), [](TaskCtx& ctx) {
    ctx.mem_read(0, 8);        // miss: 11
    ctx.function_boundary();   // forget
    ctx.mem_read(0, 8);        // miss again: 11
  });
  EXPECT_EQ(t, 10u + 11 + 11);
}

TEST(EngineMemory, MultiLineRangeChargesPerLine) {
  // 128 bytes over 32-byte lines = 4 lines, all cold: 4 * 11.
  const Cycles t = run_cycles(ArchConfig::shared_mesh(1), [](TaskCtx& ctx) {
    ctx.mem_read(0, 128);
  });
  EXPECT_EQ(t, 10u + 4 * 11);
}

TEST(EngineMemory, DistributedLocalMissGoesToL2) {
  // Distributed model: local L1 miss costs L1 (1) + L2 (10).
  const Cycles t =
      run_cycles(ArchConfig::distributed_mesh(1), [](TaskCtx& ctx) {
        ctx.mem_read(0, 8);
      });
  EXPECT_EQ(t, 10u + 11);
}

TEST(EngineMemory, CoherenceChargesOnSharedWrites) {
  // Two cores ping-pong writes to one line. With coherence timing the
  // second writer pays invalidation / remote-dirty costs; without it
  // both runs charge plain shared-memory costs.
  auto run = [](bool coherence) {
    ArchConfig cfg = ArchConfig::shared_mesh(2);
    cfg.mem.coherence_timing = coherence;
    Engine sim(cfg);
    return sim
        .run([](TaskCtx& ctx) {
          const GroupId g = ctx.make_group();
          ASSERT_TRUE(ctx.probe());
          ctx.spawn(g, [](TaskCtx& c) {
            for (int i = 0; i < 50; ++i) {
              c.mem_write(0, 8);
              c.function_boundary();
            }
          });
          for (int i = 0; i < 50; ++i) {
            ctx.mem_write(0, 8);
            ctx.function_boundary();
          }
          ctx.join(g);
        })
        .completion_ticks;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(EngineMemory, PolymorphicSlowCoreComputesSlower) {
  // Same block on a speed-1/2 core takes twice the virtual time.
  ArchConfig uni = ArchConfig::shared_mesh(2);
  ArchConfig poly = ArchConfig::polymorphic(ArchConfig::shared_mesh(2));
  // Core 0 is the slow (1/2) core in the polymorphic preset.
  const Cycles t_uni =
      run_cycles(std::move(uni), [](TaskCtx& ctx) { ctx.compute(1000); });
  const Cycles t_poly =
      run_cycles(std::move(poly), [](TaskCtx& ctx) { ctx.compute(1000); });
  // Task-start overhead also scales: (10 + 1000) * 2.
  EXPECT_EQ(t_uni, 1010u);
  EXPECT_EQ(t_poly, 2020u);
}

TEST(EngineMemory, VtScalesL1WithCoreSpeedClDoesNot) {
  // Paper SS VI: in SiMany the L1 latency is proportional to core
  // speed, in the UNISIM baseline it is uniform — the source of the
  // Fig 6 offset. Measure one cold miss + many hits on the slow core.
  auto prog = [](TaskCtx& ctx) {
    for (int i = 0; i < 100; ++i) ctx.mem_read(0, 8);
  };
  ArchConfig poly = ArchConfig::polymorphic(ArchConfig::shared_mesh(2));
  const Cycles vt = run_cycles(poly, prog, ExecutionMode::kVirtualTime);
  const Cycles cl = run_cycles(poly, prog, ExecutionMode::kCycleLevel);
  //

  // VT: hits cost 2 cycles each on the 1/2-speed core; CL: 1 cycle
  // (plus CL's extra miss detail), so VT must be measurably slower per
  // hit. Compare against the analytic VT value.
  // VT = task_start(20) + miss(2 + 20... shared latency unscaled)
  // Just assert the ordering and VT's exact hit scaling:
  EXPECT_GT(vt, 100u);
  EXPECT_GT(cl, 0u);
  // The 99 hits alone cost 198 cycles in VT but 99 in CL terms.
  EXPECT_GE(vt - cl, 50u);
}

TEST(EngineMemory, SharedCellChargesMemoryCosts) {
  // In shared mode a cell acquire is lock + annotated read of the cell
  // bytes; bigger cells cost more.
  auto run = [](std::uint32_t bytes) {
    Engine sim(ArchConfig::shared_mesh(1));
    return sim
        .run([bytes](TaskCtx& ctx) {
          const CellId cell = ctx.make_cell(bytes);
          ctx.cell_acquire(cell, AccessMode::kRead);
          ctx.cell_release(cell);
        })
        .completion_ticks;
  };
  EXPECT_GT(run(4096), run(8));
}

TEST(EngineMemory, CycleLevelChargesInstructionFetch) {
  // The same compute block must cost more in CL mode (i-fetch) than in
  // VT mode.
  timing::InstMix mix;
  mix.int_alu = 64;
  auto prog = [mix](TaskCtx& ctx) {
    for (int i = 0; i < 10; ++i) ctx.compute(mix);
  };
  const Cycles vt =
      run_cycles(ArchConfig::shared_mesh(1), prog,
                 ExecutionMode::kVirtualTime);
  const Cycles cl =
      run_cycles(ArchConfig::shared_mesh(1), prog,
                 ExecutionMode::kCycleLevel);
  EXPECT_GT(cl, vt);
}

TEST(EngineMemory, ComputeMixUsesCostTable) {
  ArchConfig cfg = ArchConfig::shared_mesh(1);
  cfg.cost_table.of(timing::InstClass::kIntAlu) = 3;
  timing::InstMix mix;
  mix.int_alu = 100;
  const Cycles t = run_cycles(std::move(cfg), [mix](TaskCtx& ctx) {
    ctx.compute(mix);
  });
  EXPECT_EQ(t, 10u + 300);
}

}  // namespace
}  // namespace simany
