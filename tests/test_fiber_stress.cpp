// Fiber backend stress suite (core/fiber.h, core/fiber_switch.S).
//
// Hammers the properties the engine's correctness rests on — leak-free
// cancellation unwinding, exception transport across switches, and the
// guard watchdog's fiber teardown on an aborted run — parameterized
// over both switch backends so the hand-rolled fast switch proves the
// exact contract ucontext established. Runs under ASan (stack and
// fake-stack hygiene) and TSan (fiber annotations) in CI via the
// `guard` label.
#include "core/fiber.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/sim_error.h"

namespace simany {
namespace {

std::vector<FiberBackend> backends_under_test() {
  std::vector<FiberBackend> b{FiberBackend::kUcontext};
#if SIMANY_FIBER_FAST_AVAILABLE
  b.push_back(FiberBackend::kFast);
#endif
  return b;
}

std::string backend_name(
    const testing::TestParamInfo<FiberBackend>& info) {
  return info.param == FiberBackend::kFast ? "Fast" : "Ucontext";
}

class FiberStress : public testing::TestWithParam<FiberBackend> {};

TEST_P(FiberStress, PoolResolvesRequestedBackend) {
  FiberPool pool(64 * 1024, GetParam());
  EXPECT_EQ(pool.backend(), GetParam());
  auto f = pool.create([] {});
  EXPECT_EQ(f->backend(), GetParam());
  f->resume();
  EXPECT_TRUE(f->finished());
}

TEST_P(FiberStress, CancellationUnwindStorm) {
  // Hundreds of fibers parked mid-stack behind destructor sentinels at
  // several call depths, then cancelled: every destructor must run,
  // every stack must come back to the pool, nothing may leak (ASan is
  // the oracle for the latter).
  constexpr int kFibers = 256;
  FiberPool pool(64 * 1024, GetParam());
  int destroyed = 0;
  struct Sentinel {
    int* counter;
    ~Sentinel() { ++*counter; }
  };
  bool cancel = false;
  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(kFibers);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(pool.create([&destroyed, &cancel, i] {
      Sentinel outer{&destroyed};
      // Park at a depth that varies per fiber so unwinding crosses a
      // different number of frames each time.
      std::function<void(int)> rec = [&](int d) {
        Sentinel inner{&destroyed};
        if (d == 0) {
          Fiber::yield();
          if (cancel) throw FiberUnwind{};
          return;
        }
        rec(d - 1);
      };
      rec(i % 17);
    }));
  }
  for (auto& f : fibers) f->resume();  // park everyone at the leaf
  EXPECT_EQ(destroyed, 0);
  cancel = true;
  for (auto& f : fibers) {
    f->resume();
    EXPECT_TRUE(f->finished());
    EXPECT_EQ(f->exception(), nullptr);  // FiberUnwind is swallowed
    pool.recycle(std::move(f));
  }
  // Every sentinel fired: one outer + (depth + 1) recursion frames each.
  int expected = 0;
  for (int i = 0; i < kFibers; ++i) expected += 2 + i % 17;
  EXPECT_EQ(destroyed, expected);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST_P(FiberStress, ExceptionTransportStorm) {
  // Every fiber throws a distinct exception after a few switches; each
  // must surface through exception() with its payload intact.
  constexpr int kFibers = 128;
  FiberPool pool(64 * 1024, GetParam());
  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(kFibers);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(pool.create([i] {
      Fiber::yield();
      Fiber::yield();
      throw std::runtime_error("fiber-" + std::to_string(i));
    }));
  }
  for (auto& f : fibers) f->resume();
  for (auto& f : fibers) f->resume();
  for (int i = 0; i < kFibers; ++i) {
    auto& f = fibers[i];
    f->resume();
    ASSERT_TRUE(f->finished());
    ASSERT_NE(f->exception(), nullptr);
    try {
      std::rethrow_exception(f->exception());
      FAIL() << "expected rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "fiber-" + std::to_string(i));
    }
    pool.recycle(std::move(f));
  }
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST_P(FiberStress, InterleaveChurn) {
  // Round-robin across a working set of fibers for thousands of total
  // switches: stacks must stay intact (per-fiber accumulators prove it)
  // and the scheduler/fiber handoff must never skew.
  constexpr int kFibers = 64;
  constexpr int kRounds = 100;
  FiberPool pool(64 * 1024, GetParam());
  std::vector<long> acc(kFibers, 0);
  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(kFibers);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(pool.create([&acc, i] {
      long local = 0;  // lives on the fiber stack across switches
      for (int r = 0; r < kRounds; ++r) {
        local += i + r;
        Fiber::yield();
      }
      acc[i] = local;
    }));
  }
  for (int r = 0; r <= kRounds; ++r) {
    for (auto& f : fibers) {
      if (!f->finished()) f->resume();
    }
  }
  for (int i = 0; i < kFibers; ++i) {
    EXPECT_TRUE(fibers[i]->finished());
    long expected = 0;
    for (int r = 0; r < kRounds; ++r) expected += i + r;
    EXPECT_EQ(acc[i], expected);
  }
}

TEST_P(FiberStress, GuardWatchdogTeardownOnParallelHost) {
  // Engine-level: a wedged core trips the livelock watchdog while task
  // fibers are parked across worker-owned shards. The abort must unwind
  // every fiber under the selected backend — ASan flags any leaked
  // stack, TSan any missing switch annotation.
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.fiber_backend = GetParam();
  cfg.host.mode = HostMode::kParallel;
  cfg.host.threads = 2;
  cfg.host.shards = 2;
  cfg.fault.seed = 5;
  cfg.fault.wedge_core_list = {9};
  cfg.guard.watchdog_rounds = 4;
  cfg.guard.poll_quanta = 64;
  Engine sim(cfg);
  try {
    (void)sim.run([](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < 32; ++i) {
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(100); });
      }
      ctx.join(g);
    });
    ADD_FAILURE() << "expected a livelock abort";
  } catch (const SimError& e) {
    EXPECT_EQ(e.code(), SimErrorCode::kLivelock);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, FiberStress,
                         testing::ValuesIn(backends_under_test()),
                         backend_name);

#if SIMANY_FIBER_FAST_AVAILABLE
TEST(FiberBackendContract, BackendsProduceIdenticalResults) {
  // The backend is purely host-side: the same parallel workload must
  // produce bit-identical simulated timing under both switches.
  auto run_with = [](FiberBackend backend) {
    ArchConfig cfg = ArchConfig::shared_mesh(16);
    cfg.fiber_backend = backend;
    cfg.host.mode = HostMode::kParallel;
    cfg.host.threads = 2;
    cfg.host.shards = 4;
    Engine sim(cfg);
    return sim.run([](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < 64; ++i) {
        spawn_or_run(ctx, g, [i](TaskCtx& c) { c.compute(20 + i % 7); });
      }
      ctx.join(g);
    });
  };
  const SimStats fast = run_with(FiberBackend::kFast);
  const SimStats slow = run_with(FiberBackend::kUcontext);
  EXPECT_EQ(fast.completion_cycles(), slow.completion_cycles());
  EXPECT_EQ(fast.tasks_spawned, slow.tasks_spawned);
  EXPECT_EQ(fast.messages, slow.messages);
}
#else
TEST(FiberBackendContract, FastBackendRejectedWhereUnavailable) {
  EXPECT_THROW(FiberPool(64 * 1024, FiberBackend::kFast),
               std::invalid_argument);
}
#endif

}  // namespace
}  // namespace simany
