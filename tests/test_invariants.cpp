// The simcheck subsystem, both directions:
//
//  * positive — randomly generated well-formed programs run to
//    completion on several topologies with InvariantChecker attached
//    and every-advance verification, without a single violation, and
//    without perturbing simulated time;
//  * negative — states and messages with injected violations (drift
//    past the bound, acausal delivery, broken conservation, bad hold
//    depths) are each caught with a diagnostic naming the invariant;
//  * deadlock — the wait-for analyzer finds circular waits on
//    fabricated states and a really deadlocking program produces a
//    structured DeadlockError instead of the engine's terse throw;
//  * lint — degenerate configurations get stable SCxxx diagnostics.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "check/config_lint.h"
#include "check/deadlock.h"
#include "check/invariant_checker.h"
#include "config/arch_config.h"
#include "core/engine.h"

namespace simany {
namespace {

using check::CheckError;
using check::DeadlockError;
using check::Invariant;
using check::InvariantChecker;
using check::Violation;

// ---------------------------------------------------------------------
// Shared random-program generator (same shape as test_random_programs)
// ---------------------------------------------------------------------

struct ProgramState {
  std::vector<LockId> locks;
  std::vector<CellId> cells;
  GroupId group = kInvalidGroup;
  std::uint64_t work_done = 0;
};

void random_task(TaskCtx& ctx, const std::shared_ptr<ProgramState>& st,
                 std::uint64_t seed, std::uint64_t tag, int depth) {
  ctx.function_boundary();
  Rng rng(seed ^ (tag * 0x9e3779b97f4a7c15ULL));
  ctx.compute(static_cast<Cycles>(1 + rng.below(200)));
  st->work_done += tag;
  if (rng.chance(0.4) && !st->locks.empty()) {
    LockGuard guard(ctx, st->locks[rng.below(st->locks.size())]);
    ctx.compute(1 + rng.below(50));
  }
  if (rng.chance(0.4) && !st->cells.empty()) {
    CellGuard guard(ctx, st->cells[rng.below(st->cells.size())],
                    rng.chance(0.5) ? AccessMode::kRead
                                    : AccessMode::kWrite);
    ctx.compute(1 + rng.below(50));
  }
  if (depth >= 3) return;
  const auto children = rng.below(4);
  for (std::uint64_t i = 0; i < children; ++i) {
    const std::uint64_t child_tag = tag * 31 + i + 1;
    spawn_or_run(ctx, st->group, [st, seed, child_tag, depth](TaskCtx& c) {
      random_task(c, st, seed, child_tag, depth + 1);
    });
  }
}

Tick run_checked(ArchConfig cfg, std::uint64_t seed,
                 InvariantChecker* checker,
                 ExecutionMode mode = ExecutionMode::kVirtualTime) {
  Engine sim(std::move(cfg), mode);
  if (checker != nullptr) checker->attach(sim);
  auto st = std::make_shared<ProgramState>();
  const auto stats = sim.run([&](TaskCtx& ctx) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      st->locks.push_back(ctx.make_lock());
    }
    for (std::uint32_t i = 0; i < 5; ++i) {
      st->cells.push_back(ctx.make_cell_at(64, i % ctx.num_cores()));
    }
    st->group = ctx.make_group();
    random_task(ctx, st, seed, 1, 0);
    ctx.join(st->group);
  });
  EXPECT_GT(st->work_done, 0u);
  return stats.completion_ticks;
}

// ---------------------------------------------------------------------
// Positive: checked runs are violation-free and timing-transparent
// ---------------------------------------------------------------------

class CheckedPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckedPrograms, SharedMeshRunsClean) {
  InvariantChecker checker;
  run_checked(ArchConfig::shared_mesh(16), GetParam(), &checker);
  EXPECT_TRUE(checker.violations().empty());
  EXPECT_GT(checker.checks_performed(), 0u);
}

TEST_P(CheckedPrograms, DistributedMeshRunsClean) {
  InvariantChecker checker;
  run_checked(ArchConfig::distributed_mesh(16), GetParam(), &checker);
  EXPECT_TRUE(checker.violations().empty());
}

TEST_P(CheckedPrograms, RingRunsClean) {
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  cfg.topology = net::Topology::ring(8);
  InvariantChecker checker;
  run_checked(std::move(cfg), GetParam(), &checker);
  EXPECT_TRUE(checker.violations().empty());
}

TEST_P(CheckedPrograms, ClusteredMeshRunsClean) {
  InvariantChecker checker;
  run_checked(ArchConfig::clustered(ArchConfig::distributed_mesh(16), 4),
              GetParam(), &checker);
  EXPECT_TRUE(checker.violations().empty());
}

TEST_P(CheckedPrograms, TightDriftRunsClean) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.drift_t_cycles = 5;  // maximum stalling pressure
  InvariantChecker checker;
  run_checked(std::move(cfg), GetParam(), &checker);
  EXPECT_TRUE(checker.violations().empty());
}

TEST_P(CheckedPrograms, BoundedSlackRunsClean) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.sync_scheme = SyncScheme::kBoundedSlack;
  InvariantChecker checker;
  run_checked(std::move(cfg), GetParam(), &checker);
  EXPECT_TRUE(checker.violations().empty());
}

TEST_P(CheckedPrograms, CycleLevelRunsClean) {
  // Drift bounds do not apply in cycle-level mode; monotonicity,
  // causality and conservation still do.
  InvariantChecker checker;
  run_checked(ArchConfig::shared_mesh(8), GetParam(), &checker,
              ExecutionMode::kCycleLevel);
  EXPECT_TRUE(checker.violations().empty());
}

TEST_P(CheckedPrograms, CheckerDoesNotPerturbTiming) {
  InvariantChecker checker;
  const Tick with =
      run_checked(ArchConfig::distributed_mesh(16), GetParam(), &checker);
  const Tick without =
      run_checked(ArchConfig::distributed_mesh(16), GetParam(), nullptr);
  EXPECT_EQ(with, without);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckedPrograms,
                         ::testing::Range<std::uint64_t>(1, 7));

// ---------------------------------------------------------------------
// Negative: injected violations are caught and correctly named
// ---------------------------------------------------------------------

/// A consistent baseline snapshot over `topo`: all cores idle at 0,
/// counters zeroed — check_state finds nothing on it.
EngineInspect clean_state(const net::Topology& topo, Cycles drift_cycles) {
  EngineInspect s;
  s.drift_ticks = ticks(drift_cycles);
  s.cores.resize(topo.num_cores());
  for (CoreId c = 0; c < topo.num_cores(); ++c) s.cores[c].id = c;
  return s;
}

net::Topology line3() {
  net::Topology t(3);
  t.add_link(0, 1);
  t.add_link(1, 2);
  return t;
}

bool has_violation(const std::vector<Violation>& vs, Invariant inv) {
  for (const Violation& v : vs) {
    if (v.invariant == inv) return true;
  }
  return false;
}

TEST(NegativeStates, CleanStatePasses) {
  const net::Topology topo = line3();
  const auto vs = InvariantChecker::check_state(clean_state(topo, 100), topo);
  EXPECT_TRUE(vs.empty());
}

TEST(NegativeStates, NeighborDriftIsCaught) {
  const net::Topology topo = line3();
  EngineInspect s = clean_state(topo, 100);
  const Tick t = s.drift_ticks;
  s.cores[0].anchor = true;  // anchored at vt=0
  s.cores[1].anchor = true;
  s.cores[1].now = sat_add(t, 1);  // one tick past its neighbor's window
  const auto vs = InvariantChecker::check_state(s, topo);
  ASSERT_TRUE(has_violation(vs, Invariant::kNeighborDrift));
  EXPECT_STREQ(check::to_string(Invariant::kNeighborDrift),
               "neighbor-drift");
}

TEST(NegativeStates, ShadowDriftThroughIdleCoreIsCaught) {
  // Core 1 is idle (shadow-transparent); core 2's limit is core 0's
  // anchor plus 2 T. No *direct* neighbor anchors core 2, so the
  // violation must be classified as shadow drift, not neighbor drift.
  const net::Topology topo = line3();
  EngineInspect s = clean_state(topo, 100);
  const Tick t = s.drift_ticks;
  s.cores[0].anchor = true;
  s.cores[2].anchor = true;
  s.cores[2].now = sat_add(sat_mul(t, 2), 1);
  const auto vs = InvariantChecker::check_state(s, topo);
  ASSERT_TRUE(has_violation(vs, Invariant::kShadowDrift));
  EXPECT_FALSE(has_violation(vs, Invariant::kNeighborDrift));
}

TEST(NegativeStates, BirthDriftIsCaught) {
  // A parent that recorded a birth at vt=100 may not run past
  // birth + T, even with no other anchor in sight.
  const net::Topology topo = line3();
  EngineInspect s = clean_state(topo, 100);
  const Tick t = s.drift_ticks;
  s.cores[0].anchor = true;
  s.cores[0].births = {100};
  s.cores[0].now = sat_add(100 + t, 1);
  s.inflight_spawns = 1;  // keep conservation consistent
  s.live_tasks = 1;
  const auto vs = InvariantChecker::check_state(s, topo);
  ASSERT_TRUE(has_violation(vs, Invariant::kBirthDrift));
  EXPECT_NE(vs.front().detail.find("birth"), std::string::npos);
}

TEST(NegativeStates, LockHolderIsExemptFromDrift) {
  // Same state as NeighborDriftIsCaught, but the runaway core holds a
  // lock: the paper exempts holders, so no drift violation.
  const net::Topology topo = line3();
  EngineInspect s = clean_state(topo, 100);
  s.cores[0].anchor = true;
  s.cores[1].anchor = true;
  s.cores[1].now = sat_mul(s.drift_ticks, 10);
  s.cores[1].hold_depth = 1;
  s.locks.push_back({0, 0, true, 1, {}});
  const auto vs = InvariantChecker::check_state(s, topo);
  EXPECT_TRUE(vs.empty());
}

TEST(NegativeStates, UnexemptHolderIsCaught) {
  const net::Topology topo = line3();
  EngineInspect s = clean_state(topo, 100);
  // Lock 0 names core 1 as holder, but core 1's hold_depth is 0: it
  // would stall under spatial sync while holding — the bug class the
  // exemption exists to prevent.
  s.locks.push_back({0, 0, true, 1, {}});
  const auto vs = InvariantChecker::check_state(s, topo);
  ASSERT_TRUE(has_violation(vs, Invariant::kHoldDepth));
  EXPECT_NE(vs.front().detail.find("not exempt"), std::string::npos);
}

TEST(NegativeStates, NegativeHoldDepthIsCaught) {
  const net::Topology topo = line3();
  EngineInspect s = clean_state(topo, 100);
  s.cores[2].hold_depth = -1;
  const auto vs = InvariantChecker::check_state(s, topo);
  EXPECT_TRUE(has_violation(vs, Invariant::kHoldDepth));
}

TEST(NegativeStates, TaskConservationBreakIsCaught) {
  const net::Topology topo = line3();
  EngineInspect s = clean_state(topo, 100);
  s.cores[0].has_fiber = true;  // one task visibly running...
  s.live_tasks = 0;             // ...but the counter says none
  const auto vs = InvariantChecker::check_state(s, topo);
  ASSERT_TRUE(has_violation(vs, Invariant::kConservation));
  EXPECT_NE(vs.front().detail.find("live_tasks"), std::string::npos);
}

TEST(NegativeStates, MessageConservationBreakIsCaught) {
  const net::Topology topo = line3();
  EngineInspect s = clean_state(topo, 100);
  s.inflight_messages = 3;  // counter claims messages nobody holds
  const auto vs = InvariantChecker::check_state(s, topo);
  ASSERT_TRUE(has_violation(vs, Invariant::kConservation));
  EXPECT_NE(vs.front().detail.find("inflight_messages"),
            std::string::npos);
}

TEST(NegativeMessages, ArrivalBeforeSendIsCaught) {
  Message m;
  m.kind = MsgKind::kTaskSpawn;
  m.src = 0;
  m.dst = 2;
  m.sent = 500;
  m.arrival = 499;
  const auto vs = InvariantChecker::check_message(m, line3(), false);
  ASSERT_TRUE(has_violation(vs, Invariant::kCausalDelivery));
  EXPECT_NE(vs.front().detail.find("before it was sent"),
            std::string::npos);
}

TEST(NegativeMessages, FasterThanLightDeliveryIsCaught) {
  // 0 -> 2 crosses two links of default latency; arriving after only
  // one tick is acausal even though arrival > sent.
  Message m;
  m.kind = MsgKind::kDataRequest;
  m.src = 0;
  m.dst = 2;
  m.sent = 500;
  m.arrival = 501;
  const auto vs = InvariantChecker::check_message(m, line3(), false);
  ASSERT_TRUE(has_violation(vs, Invariant::kCausalDelivery));
  EXPECT_NE(vs.front().detail.find("minimal path latency"),
            std::string::npos);
}

TEST(NegativeMessages, DirectDeliveryIsExemptFromPathLatency) {
  // Direct deliveries model shared-memory hand-off without a network
  // message; only send-before-arrival ordering applies to them.
  Message m;
  m.src = 0;
  m.dst = 2;
  m.sent = 500;
  m.arrival = 500;
  EXPECT_TRUE(InvariantChecker::check_message(m, line3(), true).empty());
}

TEST(NegativeLive, BackwardsAdvanceIsCaught) {
  Engine sim(ArchConfig::shared_mesh(4));
  InvariantChecker checker;
  checker.attach(sim);
  checker.on_advance(sim, 0, 50, 200, AdvanceKind::kRuntime, false);
  try {
    checker.on_advance(sim, 0, 200, 100, AdvanceKind::kRuntime, false);
    FAIL() << "backwards advance not caught";
  } catch (const CheckError& e) {
    EXPECT_EQ(e.violation().invariant, Invariant::kMonotonicTime);
    EXPECT_NE(std::string(e.what()).find("monotonic-time"),
              std::string::npos);
  }
}

TEST(NegativeLive, UnproductiveWakeIsCaught) {
  Engine sim(ArchConfig::shared_mesh(4));
  InvariantChecker checker;
  checker.attach(sim);
  try {
    checker.on_wake(sim, 1, 100, 100);  // limit does not allow progress
    FAIL() << "unproductive wake not caught";
  } catch (const CheckError& e) {
    EXPECT_EQ(e.violation().invariant, Invariant::kWakeValidity);
    EXPECT_NE(std::string(e.what()).find("wake-validity"),
              std::string::npos);
  }
}

TEST(NegativeLive, UnbalancedReleaseIsCaught) {
  Engine sim(ArchConfig::shared_mesh(4));
  InvariantChecker checker;
  checker.attach(sim);
  try {
    checker.on_lock_released(sim, 2, 0);  // never acquired
    FAIL() << "unbalanced release not caught";
  } catch (const CheckError& e) {
    EXPECT_EQ(e.violation().invariant, Invariant::kHoldDepth);
  }
}

TEST(NegativeLive, AccumulateModeCollectsInsteadOfThrowing) {
  check::CheckOptions opts;
  opts.throw_on_violation = false;
  Engine sim(ArchConfig::shared_mesh(4));
  InvariantChecker checker(opts);
  checker.attach(sim);
  checker.on_advance(sim, 0, 200, 100, AdvanceKind::kRuntime, false);
  checker.on_wake(sim, 1, 100, 100);
  ASSERT_EQ(checker.violations().size(), 2u);
  EXPECT_EQ(checker.violations()[0].invariant, Invariant::kMonotonicTime);
  EXPECT_EQ(checker.violations()[1].invariant, Invariant::kWakeValidity);
}

// ---------------------------------------------------------------------
// Deadlock analysis
// ---------------------------------------------------------------------

TEST(Deadlock, FabricatedAbBaCycleIsFound) {
  net::Topology topo(2);
  topo.add_link(0, 1);
  EngineInspect s;
  s.drift_ticks = ticks(100);
  s.cores.resize(2);
  s.live_tasks = 2;
  s.cores[0].has_fiber = true;
  s.cores[0].hold_depth = 1;
  s.cores[0].waiting_reply = true;
  s.cores[1].has_fiber = true;
  s.cores[1].hold_depth = 1;
  s.cores[1].waiting_reply = true;
  s.locks.push_back({0, 0, true, 0, {1}});  // core 1 waits for core 0
  s.locks.push_back({1, 1, true, 1, {0}});  // core 0 waits for core 1
  const auto rep = check::analyze_deadlock(s, topo);
  ASSERT_TRUE(rep.has_cycle());
  EXPECT_EQ(rep.cycle.size(), 3u);  // a -> b -> a
  EXPECT_EQ(rep.cycle.front(), rep.cycle.back());
  EXPECT_NE(rep.summary.find("circular wait"), std::string::npos);
  EXPECT_NE(rep.to_string().find("waits for lock"), std::string::npos);
}

TEST(Deadlock, AcyclicStallIsReportedWithoutCycle) {
  net::Topology topo(2);
  topo.add_link(0, 1);
  EngineInspect s;
  s.drift_ticks = ticks(100);
  s.cores.resize(2);
  s.live_tasks = 1;
  s.cores[0].has_fiber = true;
  s.cores[0].waiting_reply = true;  // lost reply, no one to blame
  const auto rep = check::analyze_deadlock(s, topo);
  EXPECT_FALSE(rep.has_cycle());
  EXPECT_NE(rep.summary.find("no circular wait"), std::string::npos);
  EXPECT_NE(rep.to_string().find("reply"), std::string::npos);
}

TEST(Deadlock, DeadlockingProgramThrowsStructuredError) {
  // The parent joins a group while holding a lock its (remotely
  // spawned) child needs: the child waits for the lock, the parent
  // waits for the child. With the checker attached the engine's terse
  // deadlock throw is replaced by a DeadlockError naming the waits.
  Engine sim(ArchConfig::shared_mesh(4));
  InvariantChecker checker;
  checker.attach(sim);
  bool spawned = false;
  try {
    sim.run([&spawned](TaskCtx& ctx) {
      const LockId lk = ctx.make_lock();
      const GroupId g = ctx.make_group();
      ctx.lock(lk);
      if (ctx.probe()) {  // idle neighbors: succeeds on the first try
        spawned = true;
        ctx.spawn(g, [lk](TaskCtx& c) {
          c.lock(lk);
          c.unlock(lk);
        });
        ctx.join(g);
      }
      ctx.unlock(lk);
    });
    FAIL() << "deadlock not detected";
  } catch (const DeadlockError& e) {
    EXPECT_TRUE(spawned);
    EXPECT_FALSE(e.report().edges.empty());
    const std::string what = e.what();
    EXPECT_NE(what.find("waits for lock"), std::string::npos);
    EXPECT_NE(what.find("joining group"), std::string::npos);
  }
}

// ---------------------------------------------------------------------
// Config lint
// ---------------------------------------------------------------------

bool has_code(const std::vector<check::LintDiag>& ds, const char* code) {
  for (const auto& d : ds) {
    if (std::string(d.code) == code) return true;
  }
  return false;
}

TEST(ConfigLint, PaperPresetsAreClean) {
  EXPECT_TRUE(check::lint_config(ArchConfig::shared_mesh(16)).empty());
  EXPECT_TRUE(check::lint_config(ArchConfig::distributed_mesh(64)).empty());
  EXPECT_TRUE(
      check::lint_config(
          ArchConfig::polymorphic(ArchConfig::distributed_mesh(16)))
          .empty());
}

TEST(ConfigLint, EmptyTopology) {
  ArchConfig cfg;
  cfg.topology = net::Topology(0);
  const auto ds = check::lint_config(cfg);
  EXPECT_TRUE(has_code(ds, "SC001"));
  EXPECT_TRUE(check::has_errors(ds));
}

TEST(ConfigLint, DisconnectedTopology) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  net::Topology t(4);
  t.add_link(0, 1);  // cores 2, 3 unreachable
  cfg.topology = std::move(t);
  const auto ds = check::lint_config(cfg);
  EXPECT_TRUE(has_code(ds, "SC002"));
  EXPECT_TRUE(has_code(ds, "SC003"));  // isolated core example named
}

TEST(ConfigLint, ZeroLatencyCycle) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  net::Topology t(3);
  t.add_link(0, 1, {0, 128});
  t.add_link(1, 2, {0, 128});
  t.add_link(2, 0, {0, 128});
  cfg.topology = std::move(t);
  EXPECT_TRUE(has_code(check::lint_config(cfg), "SC005"));
}

TEST(ConfigLint, ZeroDriftOnMultiHopMesh) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.drift_t_cycles = 0;
  const auto ds = check::lint_config(cfg);
  ASSERT_TRUE(has_code(ds, "SC006"));
  EXPECT_TRUE(check::has_errors(ds));
}

TEST(ConfigLint, SpeedVectorProblems) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.core_speeds = {{1, 1}, {0, 2}};  // wrong size and a zero speed
  const auto ds = check::lint_config(cfg);
  EXPECT_TRUE(has_code(ds, "SC008"));
  EXPECT_TRUE(has_code(ds, "SC009"));
}

TEST(ConfigLint, InexactSpeedIsWarnedNotRejected) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.core_speeds = {{5, 7}, {1, 1}, {1, 1}, {1, 1}};
  const auto ds = check::lint_config(cfg);
  EXPECT_TRUE(has_code(ds, "SC010"));
  EXPECT_FALSE(check::has_errors(ds));
}

TEST(ConfigLint, RuntimeAndMemoryKnobs) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.runtime.task_queue_capacity = 0;
  cfg.mem.line_bytes = 48;  // not a power of two
  cfg.network.chunk_bytes = 0;
  const auto ds = check::lint_config(cfg);
  EXPECT_TRUE(has_code(ds, "SC011"));
  EXPECT_TRUE(has_code(ds, "SC013"));
  EXPECT_TRUE(has_code(ds, "SC014"));
}

TEST(ConfigLint, FormatNamesSeverityAndCode) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.drift_t_cycles = 0;
  const std::string text = check::format_diags(check::lint_config(cfg));
  EXPECT_NE(text.find("error SC006"), std::string::npos);
  EXPECT_NE(text.find("drift bound"), std::string::npos);
}

}  // namespace
}  // namespace simany
