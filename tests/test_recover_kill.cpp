// Kill-chaos recovery proof (the durable-runs acceptance test).
//
// A child `simany_cli` is SIGKILLed at cycling wall-clock offsets —
// mid-round, mid-capture, wherever the timer lands — and relaunched
// with the *same* command line until it completes. The relaunches
// auto-resume from the autosave ring; the completed run's arch-stats
// and telemetry fingerprints must be bit-identical to an uninterrupted
// baseline. The property is swept over host backends and fault plans
// (`chaos` label); one sequential case plus the CLI usage/retry
// contracts stay tier-1.
//
// SIMANY_CLI_PATH is injected by CMake as $<TARGET_FILE:simany_cli>.
#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

namespace {

struct CliResult {
  bool exited = false;    // normal exit (vs signal death)
  int exit_code = -1;     // valid when exited
  bool signalled = false; // killed by a signal (ours or its own)
  std::string out;
  std::string err;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Launches simany_cli with `args`; when `kill_after_ms >= 0`, sends
/// SIGKILL once that much wall time has passed (if the child is still
/// alive — a fast child may legitimately win the race).
CliResult run_cli(const std::vector<std::string>& args,
                  int kill_after_ms = -1) {
  // ctest runs the discovered cases of this binary concurrently: the
  // capture files must be unique per process and per launch.
  static int serial = 0;
  const std::string stem = ::testing::TempDir() + "simany_cli_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(serial++);
  const std::string out_path = stem + ".out";
  const std::string err_path = stem + ".err";

  std::vector<std::string> argv_s;
  argv_s.push_back(SIMANY_CLI_PATH);
  argv_s.insert(argv_s.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (auto& a : argv_s) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::freopen(out_path.c_str(), "w", stdout);
    ::freopen(err_path.c_str(), "w", stderr);
    ::execv(argv[0], argv.data());
    std::perror("execv");
    ::_exit(127);
  }

  CliResult r;
  int status = 0;
  if (kill_after_ms >= 0) {
    // simlint: allow(det-wall-clock) host-side kill timer for the chaos harness
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(kill_after_ms);
    for (;;) {
      const pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid) break;
      // simlint: allow(det-wall-clock) host-side kill timer for the chaos harness
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  } else {
    ::waitpid(pid, &status, 0);
  }

  r.exited = WIFEXITED(status);
  if (r.exited) r.exit_code = WEXITSTATUS(status);
  r.signalled = WIFSIGNALED(status);
  r.out = slurp(out_path);
  r.err = slurp(err_path);
  return r;
}

/// All `fingerprint ...` lines from a CLI stdout, in order.
std::vector<std::string> fingerprint_lines(const std::string& out) {
  std::vector<std::string> lines;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("fingerprint", 0) == 0) lines.push_back(line);
  }
  return lines;
}

std::string fresh_ring_dir(const std::string& tag) {
  // Pid-qualified so concurrent suite invocations (two ctest trees,
  // a developer run racing CI) cannot delete each other's rings.
  const std::string dir = ::testing::TempDir() + "simany_kill_" +
                          std::to_string(::getpid()) + "_" + tag;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* ent = ::readdir(d)) {
      const std::string name = ent->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
  }
  return dir;
}

std::vector<std::string> base_args() {
  // Factor 10 runs ~200ms here: long enough that the first several
  // kill offsets land mid-run, short enough that the growing offsets
  // outrun a full resume (replay + remainder + capture overhead) well
  // inside the 60-attempt budget.
  return {"--dwarf", "spmxv", "--cores", "16", "--factor", "10",
          "--seed", "11", "--fingerprint"};
}

void append(std::vector<std::string>& to,
            const std::vector<std::string>& extra) {
  to.insert(to.end(), extra.begin(), extra.end());
}

/// The recovery property: baseline fingerprints == fingerprints of a
/// run completed across any number of SIGKILL interruptions.
void kill_recovery_property(const std::vector<std::string>& host_flags,
                            const std::vector<std::string>& fault_flags,
                            const std::string& tag) {
  std::vector<std::string> base = base_args();
  append(base, host_flags);
  append(base, fault_flags);

  // Time the uninterrupted baseline so the kill schedule adapts to the
  // build: under ASan/UBSan the same workload runs ~10-20x slower, and
  // a hard-coded schedule would never let the child win the race.
  // simlint: allow(det-wall-clock) host-side harness calibration
  const auto t0 = std::chrono::steady_clock::now();
  const CliResult baseline = run_cli(base);
  const int baseline_ms = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          // simlint: allow(det-wall-clock) host-side harness calibration
          std::chrono::steady_clock::now() - t0)
          .count());
  ASSERT_TRUE(baseline.exited) << baseline.err;
  ASSERT_EQ(0, baseline.exit_code) << baseline.err;
  const auto want = fingerprint_lines(baseline.out);
  ASSERT_FALSE(want.empty()) << "--fingerprint printed nothing";

  const std::string ring = fresh_ring_dir(tag);
  std::vector<std::string> durable = base;
  // ~170 captures per uninterrupted run: dense enough that kills land
  // mid-capture and mid-prune, cheap enough (two fsyncs per capture)
  // that the autosave tax stays a fraction of the runtime.
  append(durable, {"--auto-resume", ring, "--autosave-every", "1000"});

  int kills = 0;
  int resumes = 0;
  CliResult finished;
  bool done = false;
  for (int attempt = 0; attempt < 60 && !done; ++attempt) {
    // Growing, co-prime-ish kill offsets: early attempts die in
    // different rounds / captures / replays; later offsets outgrow
    // the full runtime (a resume replays its whole prefix, so the
    // child only finishes once the timer loses the race outright).
    // The step scales with the measured baseline so the schedule
    // reaches ~3x the durable runtime (replay + remainder + autosave
    // tax) well inside the attempt budget on any build.
    const int step = std::max(37, baseline_ms / 10);
    const int delay_ms = 15 + attempt * step;
    const CliResult r = run_cli(durable, delay_ms);
    if (r.err.find("resuming from autosave generation") != std::string::npos) {
      ++resumes;
    }
    if (r.exited && r.exit_code == 0) {
      finished = r;
      done = true;
    } else {
      ASSERT_TRUE(r.signalled || r.exited)
          << "child neither exited nor died";
      ASSERT_FALSE(r.exited && r.exit_code != 0)
          << "interrupted chain failed instead of dying/finishing:\n"
          << r.err;
      ++kills;
    }
  }
  ASSERT_TRUE(done) << "run never completed across 60 kill/relaunches";
  EXPECT_GT(kills, 0) << "workload too fast: no launch was ever killed, "
                         "the property was not exercised";
  EXPECT_GT(resumes, 0) << "no relaunch ever auto-resumed";
  EXPECT_EQ(want, fingerprint_lines(finished.out))
      << "recovered run diverged from the uninterrupted baseline\n"
      << finished.err;
}

const std::vector<std::string> kNoFlags;
const std::vector<std::string> kPar1 = {"--host-shards", "1"};
const std::vector<std::string> kPar4 = {"--host-threads", "2",
                                        "--host-shards", "4"};
const std::vector<std::string> kFaulty = {
    "--fault-seed", "7",    "--fault-delay",      "0.05",
    "--fault-dup",  "0.03", "--fault-stall",      "0.02",
    "--fault-mem-spike", "0.02"};

// ---- Tier-1: one full kill-recovery proof on the sequential host ----

TEST(RecoverKill, KillMidRunRecoversBitIdentical) {
  kill_recovery_property(kNoFlags, kNoFlags, "seq_clean");
}

// ---- Chaos sweep: hosts x fault plans ------------------------------

using KillParam = std::tuple<const char*, int, bool>;

class KillSweep : public ::testing::TestWithParam<KillParam> {};

TEST_P(KillSweep, RecoversBitIdentical) {
  const auto [tag, host_i, faulty] = GetParam();
  const std::vector<std::string>& host =
      host_i == 0 ? kNoFlags : host_i == 1 ? kPar1 : kPar4;
  kill_recovery_property(host, faulty ? kFaulty : kNoFlags, tag);
}

INSTANTIATE_TEST_SUITE_P(
    Hosts, KillSweep,
    ::testing::Values(KillParam{"seq_faulty", 0, true},
                      KillParam{"par1_clean", 1, false},
                      KillParam{"par1_faulty", 1, true},
                      KillParam{"par4_clean", 2, false},
                      KillParam{"par4_faulty", 2, true}),
    [](const ::testing::TestParamInfo<KillParam>& info) {
      return std::get<0>(info.param);
    });

// Wall-clock cadence rides natural barriers instead of forcing its
// own; the recovery property must hold for it too.
TEST(RecoverKill, WallClockCadenceSweepRecovers) {
  std::vector<std::string> base = base_args();
  const CliResult baseline = run_cli(base);
  ASSERT_TRUE(baseline.exited && baseline.exit_code == 0) << baseline.err;
  const auto want = fingerprint_lines(baseline.out);

  const std::string ring = fresh_ring_dir("wallms");
  std::vector<std::string> durable = base;
  append(durable, {"--auto-resume", ring, "--autosave-wall-ms", "5"});

  bool done = false;
  CliResult finished;
  for (int attempt = 0; attempt < 60 && !done; ++attempt) {
    const CliResult r = run_cli(durable, 15 + attempt * 37);
    if (r.exited && r.exit_code == 0) {
      finished = r;
      done = true;
    }
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(want, fingerprint_lines(finished.out)) << finished.err;
}

// ---- Incremental retries through the emergency snapshot ------------

TEST(RecoverKill, DeadlineRetriesResumeFromEmergencySnapshot) {
  // Oversized workload + tiny wall deadline: every attempt trips the
  // (transient) deadline guard, whose abort path writes an emergency
  // generation; each retry must then demonstrably resume from it.
  const std::string ring = fresh_ring_dir("retry");
  std::vector<std::string> args = {
      "--dwarf", "spmxv", "--cores", "16", "--factor", "40",
      "--seed", "3", "--deadline-ms", "120", "--retries", "2",
      "--retry-backoff-ms", "1", "--auto-resume", ring,
      "--autosave-every", "1000000"};
  const CliResult r = run_cli(args);
  ASSERT_TRUE(r.exited);
  EXPECT_EQ(3, r.exit_code)
      << "oversized run under a 120ms deadline should exhaust retries "
         "(a resume replays its whole prefix, so each attempt trips "
         "the same wall budget)\n"
      << r.err;
  // The resume line is the acceptance check: quanta > 0 means the
  // retry continued from the emergency snapshot, not from scratch.
  const auto pos = r.err.find("resuming from autosave generation");
  ASSERT_NE(std::string::npos, pos) << r.err;
  const auto qpos = r.err.find("at quanta ", pos);
  ASSERT_NE(std::string::npos, qpos);
  const long quanta = std::strtol(r.err.c_str() + qpos + 10, nullptr, 10);
  EXPECT_GT(quanta, 0) << r.err;
}

// ---- CLI contract: checked parsing and conflicting flags -----------

TEST(RecoverKill, MalformedNumbersAreUsageErrors) {
  // Pre-PR, "--retries 3x" silently parsed as 3.
  for (const auto& bad :
       std::vector<std::vector<std::string>>{{"--retries", "3x"},
                                             {"--cores", "16cores"},
                                             {"--factor", "fast"},
                                             {"--seed", "-1"},
                                             {"--autosave-every", ""},
                                             {"--deadline-ms", "1e3"}}) {
    const CliResult r = run_cli(bad);
    EXPECT_TRUE(r.exited && r.exit_code == 2)
        << bad[0] << "=" << bad[1] << " was not refused: " << r.err;
    EXPECT_NE(std::string::npos, r.err.find("invalid value"))
        << bad[0] << ": " << r.err;
  }
}

TEST(RecoverKill, ConflictingFlagCombinationsRefused) {
  const std::string ring = fresh_ring_dir("conflicts");
  const std::vector<std::vector<std::string>> bad = {
      {"--autosave-every", "100"},                       // cadence, no dir
      {"--autosave-dir", ring},                          // dir, no cadence
      {"--resume-from", "x.snap", "--auto-resume", ring},
      {"--snapshot-out", "x.snap", "--auto-resume", ring},
      {"--snapshot-out", "x.snap", "--autosave-dir", ring,
       "--autosave-every", "10"}};
  for (const auto& args : bad) {
    const CliResult r = run_cli(args);
    EXPECT_TRUE(r.exited && r.exit_code == 2)
        << args[0] << " combination was not refused: " << r.err;
  }
}

}  // namespace
