#include "dwarfs/workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <set>

namespace simany::dwarfs {
namespace {

TEST(Workloads, ArrayDeterministicAndSized) {
  const auto a = gen_array(42, 1000);
  const auto b = gen_array(42, 1000);
  const auto c = gen_array(43, 1000);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Workloads, GraphShapeAndSymmetry) {
  const auto g = gen_graph(7, 100, 200);
  EXPECT_EQ(g.n, 100u);
  // Undirected: each edge appears in both adjacency lists.
  std::size_t directed = 0;
  for (std::uint32_t u = 0; u < g.n; ++u) {
    for (const auto& [v, w] : g.adj[u]) {
      EXPECT_NE(u, v) << "self loop";
      EXPECT_GE(w, 1u);
      bool back = false;
      for (const auto& [x, w2] : g.adj[v]) {
        if (x == u && w2 == w) back = true;
      }
      EXPECT_TRUE(back) << "missing reverse edge";
      ++directed;
    }
  }
  EXPECT_EQ(directed, g.num_edges_directed());
  EXPECT_EQ(directed % 2, 0u);
  EXPECT_LE(directed / 2, 200u);
  EXPECT_GE(directed / 2, 150u);  // most requested edges placed
}

TEST(Workloads, GraphHasNoDuplicateEdges) {
  const auto g = gen_graph(11, 50, 100);
  for (std::uint32_t u = 0; u < g.n; ++u) {
    std::set<std::uint32_t> seen;
    for (const auto& [v, w] : g.adj[u]) {
      EXPECT_TRUE(seen.insert(v).second) << "duplicate edge";
    }
  }
}

TEST(Workloads, BodiesInUnitCube) {
  const auto bodies = gen_bodies(5, 200);
  EXPECT_EQ(bodies.size(), 200u);
  for (const auto& b : bodies) {
    EXPECT_GE(b.x, -1.0);
    EXPECT_LE(b.x, 1.0);
    EXPECT_GT(b.mass, 0.0);
  }
}

TEST(Workloads, OctreeMassConservation) {
  const auto bodies = gen_bodies(9, 128);
  const auto tree = build_octree(bodies);
  ASSERT_FALSE(tree.empty());
  double total = 0;
  for (const auto& b : bodies) total += b.mass;
  EXPECT_NEAR(tree.nodes[0].mass, total, 1e-9);
}

TEST(Workloads, OctreeLeavesCoverAllBodies) {
  const auto bodies = gen_bodies(13, 64);
  const auto tree = build_octree(bodies);
  std::set<std::int32_t> leaf_bodies;
  for (const auto& n : tree.nodes) {
    if (n.body >= 0) leaf_bodies.insert(n.body);
  }
  EXPECT_EQ(leaf_bodies.size(), bodies.size());
}

TEST(Workloads, PlainOctreeDepthBounded) {
  const auto t = gen_octree(3, 6, 0.5);
  EXPECT_GE(t.nodes.size(), 1u);
  // Depth bound: walk from root and measure.
  std::function<std::uint32_t(std::int32_t)> depth =
      [&](std::int32_t n) -> std::uint32_t {
    std::uint32_t best = 0;
    for (std::int32_t ch : t.nodes[n].child) {
      if (ch >= 0) best = std::max(best, 1 + depth(ch));
    }
    return best;
  };
  EXPECT_LE(depth(0), 6u);
}

TEST(Workloads, PlainOctreeBranchProbabilityScalesSize) {
  const auto small = gen_octree(3, 5, 0.2);
  const auto big = gen_octree(3, 5, 0.7);
  EXPECT_LT(small.nodes.size(), big.nodes.size());
}

TEST(Workloads, CsrWellFormed) {
  const auto a = gen_csr(17, 200, 12);
  EXPECT_EQ(a.rows, 200u);
  EXPECT_EQ(a.row_ptr.size(), 201u);
  EXPECT_EQ(a.row_ptr.front(), 0u);
  EXPECT_EQ(a.row_ptr.back(), a.nnz());
  for (std::uint32_t r = 0; r < a.rows; ++r) {
    EXPECT_LE(a.row_ptr[r], a.row_ptr[r + 1]);
    for (std::uint32_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      EXPECT_LT(a.col_idx[k], a.cols);
    }
  }
}

TEST(Workloads, CsrHasDiagonal) {
  const auto a = gen_csr(17, 100, 8);
  for (std::uint32_t r = 0; r < a.rows; ++r) {
    bool diag = false;
    for (std::uint32_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      if (a.col_idx[k] == r) diag = true;
    }
    EXPECT_TRUE(diag) << "row " << r;
  }
}

TEST(Workloads, RefComponentsOnKnownGraph) {
  Graph g;
  g.n = 6;
  g.adj.resize(6);
  auto link = [&](std::uint32_t a, std::uint32_t b) {
    g.adj[a].emplace_back(b, 1);
    g.adj[b].emplace_back(a, 1);
  };
  link(0, 1);
  link(1, 2);
  link(4, 5);
  const auto labels = ref_components(g);
  EXPECT_EQ(labels, (std::vector<std::uint32_t>{0, 0, 0, 3, 4, 4}));
}

TEST(Workloads, RefDijkstraOnKnownGraph) {
  Graph g;
  g.n = 4;
  g.adj.resize(4);
  auto link = [&](std::uint32_t a, std::uint32_t b, std::uint32_t w) {
    g.adj[a].emplace_back(b, w);
    g.adj[b].emplace_back(a, w);
  };
  link(0, 1, 1);
  link(1, 2, 2);
  link(0, 2, 10);
  const auto dist = ref_dijkstra(g);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 3u);
  EXPECT_EQ(dist[3], std::numeric_limits<std::uint64_t>::max());
}

TEST(Workloads, RefSpmxvMatchesManual) {
  Csr a;
  a.rows = 2;
  a.cols = 2;
  a.row_ptr = {0, 2, 3};
  a.col_idx = {0, 1, 1};
  a.values = {2.0, 3.0, 4.0};
  const std::vector<double> x = {1.0, 10.0};
  const auto y = ref_spmxv(a, x);
  EXPECT_DOUBLE_EQ(y[0], 32.0);
  EXPECT_DOUBLE_EQ(y[1], 40.0);
}

}  // namespace
}  // namespace simany::dwarfs
