// Causal critical-path analyzer (src/obs/critpath): determinism,
// conservation, cause attribution and the committed golden report.
//
// The headline guarantees under test:
//   1. The report is a pure function of the merged architectural event
//      multiset: sequential and 1-shard parallel runs produce
//      bit-identical reports (equal fingerprints) for every dwarf, and
//      shard-invariant workloads produce bit-identical reports across
//      1/2/4 shards on more than one topology.
//   2. Conservation: the attributed segments tile [0, completion] with
//      no gaps or overlaps and the per-cause totals re-sum to the
//      completion time — verified independently by
//      check::check_critpath (simcheck).
//   3. Attribution is sane: compute dominates compute-bound dwarfs,
//      message flights appear for distributed runs, contended locks
//      book lock-contention ticks.
//   4. The JSON report for a fixed (dwarf, architecture, seed) is
//      byte-stable against a committed golden. Intentional changes:
//      ./test_critpath --update-goldens, then review and commit.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/critpath_check.h"
#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"
#include "net/topology.h"
#include "obs/critpath.h"
#include "obs/export.h"
#include "obs/telemetry.h"

namespace simany {
namespace {

using obs::CritCause;
using obs::CritPathReport;
using obs::CritSegment;

bool g_update_goldens = false;

ArchConfig parallel(ArchConfig cfg, std::uint32_t shards,
                    std::uint32_t threads) {
  cfg.host.mode = HostMode::kParallel;
  cfg.host.shards = shards;
  cfg.host.threads = threads;
  return cfg;
}

struct RunReport {
  SimStats stats;
  CritPathReport report;
};

RunReport run_and_analyze(const ArchConfig& cfg, const TaskFn& root,
                          std::size_t top_k = 10) {
  obs::Telemetry t;
  Engine sim(cfg);
  sim.set_telemetry(&t);
  RunReport r;
  r.stats = sim.run(root);
  r.report = obs::analyze_critical_path(t.events(), top_k);
  return r;
}

TaskFn dwarf_root(const std::string& name) {
  return dwarfs::dwarf_by_name(name).make_root(1, 0.05);
}

// ---------------------------------------------------------------------
// Pure-function basics
// ---------------------------------------------------------------------

TEST(CritPath, EmptyStreamYieldsEmptyReport) {
  const CritPathReport r = obs::analyze_critical_path({});
  EXPECT_EQ(r.total_ticks, 0u);
  EXPECT_TRUE(r.segments.empty());
  EXPECT_FALSE(r.truncated);
  EXPECT_TRUE(check::check_critpath(r, 0).empty());
}

TEST(CritPath, AnalysisIsDeterministicInProcess) {
  const ArchConfig cfg = ArchConfig::shared_mesh(16);
  const RunReport a = run_and_analyze(cfg, dwarf_root("spmxv"));
  const RunReport b = run_and_analyze(cfg, dwarf_root("spmxv"));
  EXPECT_EQ(a.report.fingerprint(), b.report.fingerprint());
  EXPECT_GT(a.report.segments.size(), 0u);
}

// ---------------------------------------------------------------------
// Conservation (simcheck): segments tile [0, completion] exactly
// ---------------------------------------------------------------------

TEST(CritPath, ConservationHoldsAcrossDwarfsAndArchitectures) {
  for (const char* dwarf : {"spmxv", "quicksort", "octree"}) {
    for (const bool distributed : {false, true}) {
      const ArchConfig cfg = distributed ? ArchConfig::distributed_mesh(16)
                                         : ArchConfig::shared_mesh(16);
      const RunReport r = run_and_analyze(cfg, dwarf_root(dwarf));
      EXPECT_EQ(r.report.total_ticks, r.stats.completion_ticks)
          << dwarf << " distributed=" << distributed;
      const auto violations =
          check::check_critpath(r.report, r.stats.completion_ticks);
      EXPECT_TRUE(violations.empty())
          << dwarf << " distributed=" << distributed << ": "
          << (violations.empty() ? "" : violations.front().detail);
      EXPECT_FALSE(r.report.truncated);
    }
  }
}

TEST(CritPath, CheckerCatchesSeededViolations) {
  CritPathReport r;
  r.total_ticks = 100;
  r.segments.push_back(
      CritSegment{.t0 = 0, .t1 = 40, .core = 0, .src = 0,
                  .cause = CritCause::kCompute});
  r.segments.push_back(  // gap: 40 -> 50
      CritSegment{.t0 = 50, .t1 = 100, .core = 1, .src = 1,
                  .cause = CritCause::kRuntime});
  r.cause_ticks[static_cast<std::size_t>(CritCause::kCompute)] = 40;
  r.cause_ticks[static_cast<std::size_t>(CritCause::kRuntime)] = 50;
  const auto violations = check::check_critpath(r, 100);
  EXPECT_FALSE(violations.empty());
  // Also: mismatched completion time.
  CritPathReport ok;
  EXPECT_FALSE(check::check_critpath(ok, 12).empty());
}

// ---------------------------------------------------------------------
// Determinism across hosts (the seq ≡ par contract)
// ---------------------------------------------------------------------

TEST(CritPath, SequentialEqualsOneShardParallel) {
  for (const char* dwarf : {"spmxv", "quicksort"}) {
    for (const bool distributed : {false, true}) {
      const ArchConfig cfg = distributed ? ArchConfig::distributed_mesh(16)
                                         : ArchConfig::shared_mesh(16);
      const TaskFn root = dwarf_root(dwarf);
      const RunReport seq = run_and_analyze(cfg, root);
      const RunReport par = run_and_analyze(parallel(cfg, 1, 4), root);
      EXPECT_EQ(seq.report.fingerprint(), par.report.fingerprint())
          << dwarf << " distributed=" << distributed;
    }
  }
}

// Shard-invariant workload (strictly serialized remote cell reads, no
// probes/migrations — same construction as the telemetry suite): the
// architectural timeline, and therefore the critical-path report, must
// be bit-identical at any shard count.
TaskFn traffic_root() {
  return [](TaskCtx& ctx) {
    const std::uint32_t n = ctx.num_cores();
    std::vector<CellId> cells;
    for (std::uint32_t h = 1; h < n; ++h) {
      cells.push_back(ctx.make_cell_at(256, h));
    }
    for (int round = 0; round < 3; ++round) {
      for (const CellId cell : cells) {
        ctx.compute(20);
        CellGuard guard(ctx, cell, AccessMode::kRead);
        ctx.compute(5);
      }
    }
  };
}

TEST(CritPath, ReportBitIdenticalAcrossShardCounts) {
  ArchConfig mesh = ArchConfig::distributed_mesh(16);
  ArchConfig ring = ArchConfig::distributed_mesh(16);
  ring.topology = net::Topology::ring(16);
  int checked = 0;
  for (const ArchConfig& cfg : {mesh, ring}) {
    const TaskFn root = traffic_root();
    const RunReport seq = run_and_analyze(cfg, root);
    ASSERT_GT(seq.report.segments.size(), 0u);
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
      const RunReport par = run_and_analyze(parallel(cfg, shards, 2), root);
      EXPECT_EQ(seq.report.fingerprint(), par.report.fingerprint())
          << "shards=" << shards << " topology=" << checked;
      EXPECT_TRUE(
          check::check_critpath(par.report, par.stats.completion_ticks)
              .empty())
          << "shards=" << shards << " topology=" << checked;
    }
    ++checked;
  }
  EXPECT_EQ(checked, 2);
}

// ---------------------------------------------------------------------
// Attribution sanity
// ---------------------------------------------------------------------

TEST(CritPath, ComputeDominatesAComputeBoundDwarf) {
  const RunReport r =
      run_and_analyze(ArchConfig::shared_mesh(16), dwarf_root("spmxv"));
  const Tick compute =
      r.report.cause_ticks[static_cast<std::size_t>(CritCause::kCompute)];
  EXPECT_GT(compute, 0u);
  EXPECT_GT(compute * 4, r.report.total_ticks);  // > 25% of the path
  EXPECT_FALSE(r.report.top_cores.empty());
}

TEST(CritPath, RemoteTrafficPutsFlightsOnThePath) {
  const RunReport r =
      run_and_analyze(ArchConfig::distributed_mesh(16), traffic_root());
  const Tick mem =
      r.report.cause_ticks[static_cast<std::size_t>(CritCause::kMemory)];
  const Tick noc =
      r.report.cause_ticks[static_cast<std::size_t>(CritCause::kNoc)];
  EXPECT_GT(mem + noc, 0u);
  // Flight segments carry src != core; the top-links ranking sees them.
  EXPECT_FALSE(r.report.top_links.empty());
}

TEST(CritPath, ContendedLockBooksContentionTicks) {
  // Workers grab the lock with a long hold each; the root then takes
  // the same lock from behind them. The root finishes last (it joins),
  // so its contended acquire sits on the critical path and the wait's
  // hand-off must be attributed to the lock object.
  const TaskFn root = [](TaskCtx& ctx) {
    const LockId lk = ctx.make_lock();
    const GroupId g = ctx.make_group();
    const auto worker = [lk](TaskCtx& t) {
      t.lock(lk);
      t.compute(200);
      t.unlock(lk);
    };
    for (int i = 0; i < 4; ++i) {
      if (ctx.probe()) ctx.spawn(g, worker);
    }
    ctx.compute(5);
    ctx.lock(lk);  // workers hold ~200 cycles each: this waits
    ctx.compute(10);
    ctx.unlock(lk);
    ctx.join(g);
  };
  const RunReport r = run_and_analyze(ArchConfig::shared_mesh(16), root);
  const Tick lock_ticks = r.report.cause_ticks[static_cast<std::size_t>(
      CritCause::kLockContention)];
  EXPECT_GT(lock_ticks, 0u);
  bool found_obj = false;
  for (const auto& o : r.report.top_objects) {
    if (!o.is_cell) found_obj = true;
  }
  EXPECT_TRUE(found_obj);
  EXPECT_TRUE(
      check::check_critpath(r.report, r.stats.completion_ticks).empty());
}

// ---------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------

TEST(CritPath, ChromeTraceGainsCriticalPathTrack) {
  obs::Telemetry t;
  Engine sim(ArchConfig::shared_mesh(16));
  sim.set_telemetry(&t);
  (void)sim.run(dwarf_root("quicksort"));
  const CritPathReport report = obs::analyze_critical_path(t.events());
  std::ostringstream with;
  obs::ChromeTraceOptions copt;
  copt.critpath = &report;
  obs::write_chrome_trace(with, t, copt);
  EXPECT_NE(with.str().find("critical path (virtual time)"),
            std::string::npos);
  EXPECT_NE(with.str().find("\"critpath\""), std::string::npos);
  std::ostringstream without;
  obs::write_chrome_trace(without, t);
  EXPECT_EQ(without.str().find("critical path (virtual time)"),
            std::string::npos);
}

TEST(CritPath, JsonReportParsesStructurally) {
  const RunReport r =
      run_and_analyze(ArchConfig::shared_mesh(16), dwarf_root("spmxv"), 3);
  std::ostringstream os;
  obs::write_critpath_json(os, r.report);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"simany-critpath-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"causes\""), std::string::npos);
  EXPECT_NE(json.find("\"segments\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\""), std::string::npos);
  // top_k = 3 bounds the rankings.
  EXPECT_LE(r.report.top_cores.size(), 3u);
  EXPECT_LE(r.report.top_links.size(), 3u);
}

// ---------------------------------------------------------------------
// Golden report
// ---------------------------------------------------------------------

void expect_matches_golden(const std::string& name,
                           const std::string& actual) {
  const std::string path =
      std::string(SIMANY_GOLDEN_DIR) + "/" + name + ".json";
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "updated golden " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run test_critpath --update-goldens and commit the result";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual)
      << "critpath report for " << name << " diverges from " << path
      << ". If the change is intentional, rerun with --update-goldens "
         "and commit the new golden.";
}

TEST(CritPathGolden, OctreeMesh16ReportIsStable) {
  obs::Telemetry t;
  Engine sim(ArchConfig::shared_mesh(16));
  sim.set_telemetry(&t);
  (void)sim.run(dwarfs::dwarf_by_name("octree").make_root(1, 0.04));
  const CritPathReport report = obs::analyze_critical_path(t.events());
  std::ostringstream os;
  obs::write_critpath_json(os, report);
  expect_matches_golden("critpath_octree_mesh16_seed1", os.str());
}

}  // namespace
}  // namespace simany

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-goldens") == 0) {
      simany::g_update_goldens = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
