#include "timing/cost_model.h"

#include <gtest/gtest.h>

namespace simany::timing {
namespace {

TEST(CostModel, PureIntBlockIsExact) {
  CostModel model;
  Rng rng(1);
  InstMix mix;
  mix.int_alu = 10;
  EXPECT_EQ(model.block_cost(mix, rng),
            10 * model.table().of(InstClass::kIntAlu));
}

TEST(CostModel, ClassCostsAreApplied) {
  CostModel model;
  Rng rng(1);
  InstMix mix;
  mix.int_mul = 2;
  mix.fp_alu = 3;
  mix.fp_mul_div = 1;
  mix.branches_static = 4;
  const Cycles expected = 2 * model.table().of(InstClass::kIntMul) +
                          3 * model.table().of(InstClass::kFpAlu) +
                          1 * model.table().of(InstClass::kFpMulDiv) +
                          4 * model.table().of(InstClass::kBranchUncond);
  EXPECT_EQ(model.block_cost(mix, rng), expected);
}

TEST(CostModel, CustomTableRespected) {
  CostTable table;
  table.of(InstClass::kIntAlu) = 7;
  CostModel model(table, BranchModel{});
  Rng rng(1);
  InstMix mix;
  mix.int_alu = 3;
  EXPECT_EQ(model.block_cost(mix, rng), 21u);
}

TEST(CostModel, BranchCostIsBounded) {
  CostModel model;
  const auto& bm = model.branch_model();
  Rng rng(42);
  InstMix mix;
  mix.branches = 10;
  const Cycles base = 10 * model.table().of(InstClass::kBranch);
  for (int i = 0; i < 200; ++i) {
    const Cycles c = model.block_cost(mix, rng);
    EXPECT_GE(c, base);
    EXPECT_LE(c, base + 10 * bm.mispredict_penalty);
  }
}

TEST(CostModel, BranchPenaltyConvergesToMissRate) {
  // Paper model: 90 % prediction success, 5-cycle flush on a miss.
  CostModel model;
  Rng rng(7);
  InstMix mix;
  mix.branches = 1;
  const Cycles per_branch = model.table().of(InstClass::kBranch);
  double total_extra = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    total_extra += double(model.block_cost(mix, rng) - per_branch);
  }
  const double expected =
      (1.0 - model.branch_model().predict_rate) *
      model.branch_model().mispredict_penalty;
  EXPECT_NEAR(total_extra / n, expected, 0.05);
}

TEST(CostModel, LargeBranchCountUsesExpectation) {
  // Above the exact-resolution threshold, the cost stays within one
  // penalty of the analytic expectation.
  CostModel model;
  Rng rng(3);
  InstMix mix;
  mix.branches = 10000;
  const double expected = model.expected_block_cost(mix);
  for (int i = 0; i < 20; ++i) {
    const double c = double(model.block_cost(mix, rng));
    EXPECT_NEAR(c, expected, model.branch_model().mispredict_penalty + 1);
  }
}

TEST(CostModel, ExpectedBlockCostFormula) {
  CostModel model;
  InstMix mix;
  mix.int_alu = 4;
  mix.branches = 10;
  const double expected =
      4.0 * model.table().of(InstClass::kIntAlu) +
      10.0 * model.table().of(InstClass::kBranch) +
      10.0 * (1.0 - model.branch_model().predict_rate) *
          model.branch_model().mispredict_penalty;
  EXPECT_DOUBLE_EQ(model.expected_block_cost(mix), expected);
}

TEST(CostModel, DeterministicGivenSameRngState) {
  CostModel model;
  InstMix mix;
  mix.int_alu = 5;
  mix.branches = 20;
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.block_cost(mix, a), model.block_cost(mix, b));
  }
}

TEST(InstMix, ScalesByCount) {
  InstMix mix;
  mix.int_alu = 2;
  mix.fp_alu = 1;
  mix.branches = 1;
  const InstMix scaled = mix * 5;
  EXPECT_EQ(scaled.int_alu, 10u);
  EXPECT_EQ(scaled.fp_alu, 5u);
  EXPECT_EQ(scaled.branches, 5u);
}

TEST(InstMix, Accumulates) {
  InstMix a;
  a.int_alu = 1;
  a.int_mul = 2;
  InstMix b;
  b.int_alu = 3;
  b.branches_static = 4;
  a += b;
  EXPECT_EQ(a.int_alu, 4u);
  EXPECT_EQ(a.int_mul, 2u);
  EXPECT_EQ(a.branches_static, 4u);
}

TEST(CostModel, EmptyMixCostsNothing) {
  CostModel model;
  Rng rng(1);
  EXPECT_EQ(model.block_cost(InstMix{}, rng), 0u);
  EXPECT_DOUBLE_EQ(model.expected_block_cost(InstMix{}), 0.0);
}

}  // namespace
}  // namespace simany::timing
