// Durable-run suite (src/recover): autosave ring + auto-resume.
//
// The contract under test extends the snapshot equivalence property to
// crash recovery: a run that autosaves, a run that resumes from any
// ring generation, and a chain interrupted by a guard abort must all
// be bit-identical — architectural statistics and telemetry
// fingerprints — to the same run left alone. On top of that sits an
// adversarial corpus for the ring scanner: torn, corrupt, duplicated
// and stale generations, missing or garbage manifests, stray files —
// every one must degrade to a structured warning and a sound resume
// (or a fresh start), never to UB or a wrong answer.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/sim_error.h"
#include "dwarfs/dwarfs.h"
#include "obs/telemetry.h"
#include "recover/ring.h"
#include "recover/supervisor.h"
#include "snapshot/snapshot.h"

namespace simany {
namespace {

constexpr double kTiny = 0.04;
constexpr const char* kDwarf = "spmxv";
constexpr std::uint64_t kSeed = 17;

/// FNV-1a over every architectural SimStats field (same exclusions as
/// the snapshot suite: host_rounds / wall_seconds / host_threads_used
/// are host-side observations that barrier scheduling may move).
std::uint64_t arch_fingerprint(const SimStats& s) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 1099511628211ULL;
    }
  };
  mix(s.completion_ticks);
  mix(s.tasks_spawned);
  mix(s.tasks_inlined);
  mix(s.tasks_migrated);
  mix(s.probes_sent);
  mix(s.probes_denied);
  mix(s.messages);
  mix(s.sync_stalls);
  mix(s.fiber_switches);
  mix(s.joins_suspended);
  mix(s.limit_recomputes);
  mix(s.faults_injected);
  mix(s.fault_core_stalls);
  mix(s.fault_spawn_denials);
  mix(s.guard_inbox_overflows);
  mix(s.guard_fiber_overflows);
  mix(s.inbox_depth_peak);
  mix(s.live_fibers_peak);
  mix(s.parallelism_samples);
  mix(s.parallelism_sum);
  mix(s.parallelism_max);
  mix(s.drift_max_ticks);
  mix(s.network.messages);
  mix(s.network.bytes);
  mix(s.network.hops);
  mix(s.network.contention_ticks);
  for (const Tick t : s.core_busy_ticks) mix(t);
  return h;
}

struct RunResult {
  std::uint64_t stats_fp = 0;
  std::uint64_t telemetry_fp = 0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

std::uint64_t workload_fp(double factor = kTiny) {
  return snapshot::workload_fingerprint(kDwarf, kSeed, factor);
}

RunResult run_plain(const ArchConfig& cfg, double factor = kTiny) {
  Engine sim(cfg);
  obs::Telemetry tel;
  sim.set_telemetry(&tel);
  const SimStats st =
      sim.run(dwarfs::dwarf_by_name(kDwarf).make_root(kSeed, factor));
  return RunResult{arch_fingerprint(st),
                   tel.fingerprint(obs::EventClass::kAll)};
}

struct DurableRun {
  RunResult result;
  recover::ArmInfo arm;
};

/// One supervised run: arm the ring (resuming if it holds state), run
/// to completion.
DurableRun run_durable(const ArchConfig& cfg,
                       const recover::DurableOptions& dopt,
                       double factor = kTiny) {
  Engine sim(cfg);
  obs::Telemetry tel;
  sim.set_telemetry(&tel);
  recover::RunSupervisor sup(dopt);
  DurableRun out;
  out.arm = sup.arm(sim);
  const SimStats st =
      sim.run(dwarfs::dwarf_by_name(kDwarf).make_root(kSeed, factor));
  out.result = RunResult{arch_fingerprint(st),
                         tel.fingerprint(obs::EventClass::kAll)};
  return out;
}

recover::DurableOptions ring_options(const std::string& dir,
                                     std::uint64_t every = 50,
                                     double factor = kTiny) {
  recover::DurableOptions d;
  d.dir = dir;
  d.every_quanta = every;
  d.auto_resume = true;
  d.workload_fp = workload_fp(factor);
  return d;
}

/// Fresh (emptied) ring directory under the test temp root,
/// pid-qualified so concurrent suite invocations cannot collide.
std::string fresh_ring_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "simany_ring_" +
                          std::to_string(::getpid()) + "_" + tag;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* ent = ::readdir(d)) {
      const std::string name = ent->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
  }
  return dir;
}

void corrupt_truncate(const std::string& path, long keep) {
  ASSERT_EQ(0, ::truncate(path.c_str(), keep)) << path;
}

void corrupt_flip_byte(const std::string& path, long offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(offset);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(offset);
  f.write(&b, 1);
}

void write_text(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  out << body;
}

// ---- Ring basics ----------------------------------------------------

TEST(RecoverRing, PathNaming) {
  EXPECT_EQ("d/run.autosave.7.snap", recover::generation_path("d", 7));
  EXPECT_EQ("d/run.autosave.manifest", recover::manifest_path("d"));
}

TEST(RecoverRing, MissingDirectoryScansAsFreshStart) {
  const auto scan =
      recover::scan_ring(::testing::TempDir() + "simany_no_such_ring");
  EXPECT_TRUE(scan.valid.empty());
  EXPECT_TRUE(scan.warnings.empty());
  EXPECT_EQ(0u, scan.next_gen);
}

// ---- Equivalence properties ----------------------------------------

TEST(RecoverRing, AutosaveDoesNotPerturbResults) {
  const std::string dir = fresh_ring_dir("perturb");
  const ArchConfig cfg = ArchConfig::shared_mesh(16);
  const RunResult base = run_plain(cfg);
  const DurableRun saved = run_durable(cfg, ring_options(dir));
  EXPECT_FALSE(saved.arm.resumed);
  EXPECT_EQ(base, saved.result) << "arming autosave perturbed the run";

  const auto scan = recover::scan_ring(dir);
  EXPECT_TRUE(scan.warnings.empty());
  ASSERT_FALSE(scan.valid.empty()) << "cadence produced no generations";
  EXPECT_LE(scan.valid.size(), 4u) << "ring bound not enforced";
  for (const auto& g : scan.valid) {
    EXPECT_EQ(50u, g.every_quanta);
    EXPECT_FALSE(g.emergency);
  }
}

TEST(RecoverRing, ResumeFromRingMatchesBaseline) {
  const std::string dir = fresh_ring_dir("resume");
  const ArchConfig cfg = ArchConfig::shared_mesh(16);
  const RunResult base = run_plain(cfg);
  (void)run_durable(cfg, ring_options(dir));

  // Resume from the newest generation (close to the finish line).
  const auto before = recover::scan_ring(dir);
  ASSERT_FALSE(before.valid.empty());
  const std::uint64_t newest_cursor = before.valid.back().cursor;
  const DurableRun resumed = run_durable(cfg, ring_options(dir));
  EXPECT_TRUE(resumed.arm.resumed);
  EXPECT_EQ(newest_cursor, resumed.arm.cursor);
  EXPECT_EQ(base, resumed.result) << "auto-resumed run diverged";

  // Now resume from the *earliest* surviving generation (simulating a
  // ring whose newer generations were lost): delete everything after
  // it, leaving plenty of run for the continuation to re-capture.
  auto scan = recover::scan_ring(dir);
  ASSERT_GE(scan.valid.size(), 2u);
  const recover::RingGeneration oldest = scan.valid.front();
  for (std::size_t i = 1; i < scan.valid.size(); ++i) {
    std::remove(scan.valid[i].path.c_str());
  }
  const DurableRun replayed = run_durable(cfg, ring_options(dir));
  EXPECT_TRUE(replayed.arm.resumed);
  EXPECT_EQ(oldest.cursor, replayed.arm.cursor);
  EXPECT_EQ(base, replayed.result) << "early-generation resume diverged";

  // Forced-cursor inheritance: generations captured after the resume
  // must force the resumed-from cursor in their own replays.
  const auto after = recover::scan_ring(dir);
  ASSERT_FALSE(after.valid.empty());
  ASSERT_GT(after.valid.back().gen, oldest.gen)
      << "continuation captured no new generations";
  bool inherited = false;
  for (const std::uint64_t f : after.valid.back().forced_cursors) {
    if (f == oldest.cursor) inherited = true;
  }
  EXPECT_TRUE(inherited)
      << "newest generation lost its ancestor's capture cursor";
}

TEST(RecoverRing, ResumeAdoptsTheRingsCadence) {
  const std::string dir = fresh_ring_dir("cadence");
  const ArchConfig cfg = ArchConfig::shared_mesh(16);
  (void)run_durable(cfg, ring_options(dir, 50));

  // A different CLI cadence mid-chain must be overridden (with a
  // warning), or later replays would mirror the wrong schedule.
  const DurableRun resumed = run_durable(cfg, ring_options(dir, 70));
  EXPECT_TRUE(resumed.arm.resumed);
  bool warned = false;
  for (const auto& w : resumed.arm.warnings) {
    if (w.find("cadence") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned) << "cadence adoption was silent";
  const auto scan = recover::scan_ring(dir);
  ASSERT_FALSE(scan.valid.empty());
  EXPECT_EQ(50u, scan.valid.back().every_quanta);
}

TEST(RecoverRing, WrongWorkloadIdentityRefused) {
  const std::string dir = fresh_ring_dir("identity");
  const ArchConfig cfg = ArchConfig::shared_mesh(16);
  (void)run_durable(cfg, ring_options(dir));

  recover::DurableOptions other = ring_options(dir);
  other.workload_fp =
      snapshot::workload_fingerprint("octree", kSeed, kTiny);
  Engine sim(cfg);
  recover::RunSupervisor sup(other);
  try {
    (void)sup.arm(sim);
    FAIL() << "resume accepted a generation from a different workload";
  } catch (const SimError& e) {
    EXPECT_EQ(SimErrorCode::kSnapshotMismatch, e.code());
  }
}

// ---- Emergency capture: incremental retries ------------------------

TEST(RecoverRing, GuardAbortLeavesAResumableEmergencyGeneration) {
  const std::string dir = fresh_ring_dir("emergency");
  // A factor big enough that a 30ms wall deadline trips mid-run with
  // real progress behind it (the tiny factor finishes in ~3ms).
  const double factor = 5.0;
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  const RunResult base = run_plain(cfg, factor);

  // Wall deadline: guard_poll trips mid-round and forces a barrier at
  // a wall-clock-dependent cursor — exactly the case the emergency
  // capture (and its forced-cursor bookkeeping) exists for. The
  // cadence sits far beyond the workload so the only generation the
  // ring can hold is the emergency capture from the abort path.
  ArchConfig capped = cfg;
  capped.guard.deadline_ms = 30;
  const recover::DurableOptions dopt =
      ring_options(dir, 1u << 20, factor);
  {
    Engine sim(capped);
    // Telemetry attachment is part of the snapshot identity: the
    // aborted attempt and the retry must agree on it.
    obs::Telemetry tel;
    sim.set_telemetry(&tel);
    recover::RunSupervisor sup(dopt);
    (void)sup.arm(sim);
    EXPECT_THROW(
        (void)sim.run(
            dwarfs::dwarf_by_name(kDwarf).make_root(kSeed, factor)),
        SimError);
  }

  const auto scan = recover::scan_ring(dir);
  ASSERT_EQ(1u, scan.valid.size())
      << "guard abort did not leave exactly the emergency generation";
  EXPECT_TRUE(scan.valid.back().emergency);
  EXPECT_GT(scan.valid.back().cursor, 0u);

  // The "retry": a fresh attempt without the cap resumes from the
  // emergency snapshot (cursor > 0 — incremental, not from scratch)
  // and completes bit-identical to the undisturbed baseline.
  const DurableRun retried = run_durable(cfg, dopt, factor);
  EXPECT_TRUE(retried.arm.resumed);
  EXPECT_GT(retried.arm.cursor, 0u);
  EXPECT_EQ(base, retried.result) << "emergency-resumed run diverged";
}

// ---- Adversarial ring corpus ---------------------------------------

class RingCorpus : public ::testing::Test {
 protected:
  /// Build a healthy ring and remember the baseline.
  void build(const std::string& tag) {
    dir_ = fresh_ring_dir(tag);
    cfg_ = ArchConfig::shared_mesh(16);
    base_ = run_plain(cfg_);
    (void)run_durable(cfg_, ring_options(dir_));
    scan_ = recover::scan_ring(dir_);
    ASSERT_GE(scan_.valid.size(), 2u)
        << "corpus needs at least two generations to damage";
  }

  /// Resume after damage and require baseline-equal completion.
  void expect_recovers(std::uint64_t expected_cursor) {
    const DurableRun r = run_durable(cfg_, ring_options(dir_));
    EXPECT_TRUE(r.arm.resumed);
    EXPECT_EQ(expected_cursor, r.arm.cursor);
    EXPECT_EQ(base_, r.result);
  }

  std::string dir_;
  ArchConfig cfg_;
  RunResult base_;
  recover::RingScan scan_;
};

TEST_F(RingCorpus, TornNewestGenerationFallsBackOneStep) {
  build("torn");
  corrupt_truncate(scan_.valid.back().path, 40);
  const auto rescan = recover::scan_ring(dir_);
  ASSERT_EQ(scan_.valid.size() - 1, rescan.valid.size());
  ASSERT_FALSE(rescan.warnings.empty());
  EXPECT_NE(std::string::npos, rescan.warnings.front().find("skipping"));
  expect_recovers(scan_.valid[scan_.valid.size() - 2].cursor);
}

TEST_F(RingCorpus, BitFlippedGenerationIsSkippedByDigest) {
  build("flip");
  // Flip a byte well inside the payload: the section digests must
  // catch it even though the container frame still parses.
  corrupt_flip_byte(scan_.valid.back().path, 200);
  const auto rescan = recover::scan_ring(dir_);
  ASSERT_EQ(scan_.valid.size() - 1, rescan.valid.size());
  expect_recovers(scan_.valid[scan_.valid.size() - 2].cursor);
}

TEST_F(RingCorpus, MissingManifestDegradesToWarning) {
  build("nomanifest");
  std::remove(recover::manifest_path(dir_).c_str());
  const auto rescan = recover::scan_ring(dir_);
  // Generations are discovered by glob + decode; only the (advisory)
  // forced-cursor metadata is lost, and the scan says so.
  EXPECT_EQ(scan_.valid.size(), rescan.valid.size());
  bool warned = false;
  for (const auto& w : rescan.warnings) {
    if (w.find("no manifest entry") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
  expect_recovers(scan_.valid.back().cursor);
}

TEST_F(RingCorpus, GarbageManifestIsPoisonedNotFatal) {
  build("badmanifest");
  write_text(recover::manifest_path(dir_),
             "not-the-manifest-magic\ngen what\n");
  const auto rescan = recover::scan_ring(dir_);
  EXPECT_EQ(scan_.valid.size(), rescan.valid.size());
  EXPECT_FALSE(rescan.warnings.empty());
  expect_recovers(scan_.valid.back().cursor);
}

TEST_F(RingCorpus, DuplicateGenerationNumbersAreDeduplicated) {
  build("dup");
  // "07" and "7" both parse to generation 7: an adversarial directory
  // can hold both spellings. One must win deterministically.
  const auto& newest = scan_.valid.back();
  std::ifstream in(newest.path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  write_text(dir_ + "/run.autosave.0" + std::to_string(newest.gen) + ".snap",
             bytes);
  const auto rescan = recover::scan_ring(dir_);
  EXPECT_EQ(scan_.valid.size(), rescan.valid.size());
  bool warned = false;
  for (const auto& w : rescan.warnings) {
    if (w.find("duplicate") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST_F(RingCorpus, StrayFilesAreIgnored) {
  build("stray");
  write_text(dir_ + "/README.txt", "not a snapshot\n");
  write_text(dir_ + "/run.autosave.x.snap", "bad generation number\n");
  write_text(dir_ + "/run.autosave.3.snap.tmp", "leftover temp\n");
  const auto rescan = recover::scan_ring(dir_);
  EXPECT_EQ(scan_.valid.size(), rescan.valid.size());
  expect_recovers(scan_.valid.back().cursor);
}

TEST_F(RingCorpus, StaleCursorRegressionIsCalledOut) {
  build("stale");
  // Copy the *oldest* generation's bytes over a fresh higher
  // generation number: decodes cleanly but its cursor runs backwards,
  // which means the directory mixes runs.
  std::ifstream in(scan_.valid.front().path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  write_text(recover::generation_path(dir_, scan_.next_gen), bytes);
  const auto rescan = recover::scan_ring(dir_);
  bool warned = false;
  for (const auto& w : rescan.warnings) {
    if (w.find("older than") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned) << "cursor regression scanned silently";
}

TEST_F(RingCorpus, FullyCorruptRingStartsFromScratch) {
  build("scorched");
  for (const auto& g : scan_.valid) corrupt_truncate(g.path, 10);
  const auto rescan = recover::scan_ring(dir_);
  EXPECT_TRUE(rescan.valid.empty());
  bool warned = false;
  for (const auto& w : rescan.warnings) {
    if (w.find("starting from scratch") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
  // next_gen still advances past the wreckage: new captures must not
  // overwrite the evidence.
  EXPECT_EQ(scan_.next_gen, rescan.next_gen);

  const DurableRun fresh = run_durable(cfg_, ring_options(dir_));
  EXPECT_FALSE(fresh.arm.resumed);
  EXPECT_EQ(base_, fresh.result);
}

}  // namespace
}  // namespace simany
