// Property/fuzz tests: randomly generated well-formed task programs
// must complete, verify, and be deterministic on every architecture.
//
// The generator builds a random task tree from a seed: each task does
// random annotated compute/memory work, optionally takes a random lock
// or cell, spawns a random number of children (conditionally) and
// joins them. Well-formedness (locks released, groups joined, no
// cycles) is by construction; everything else — depth, fan-out, sizes,
// contention — varies with the seed.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <tuple>

#include "config/arch_config.h"
#include "core/engine.h"

namespace simany {
namespace {

struct ProgramShape {
  std::uint64_t seed = 0;
  int max_depth = 4;
  int max_children = 4;
  std::uint32_t num_locks = 3;
  std::uint32_t num_cells = 5;
};

struct ProgramState {
  std::vector<LockId> locks;
  std::vector<CellId> cells;
  GroupId group = kInvalidGroup;
  /// Host-side verification counter. Atomic because parallel-host
  /// worker threads run task bodies concurrently; relaxed ordering is
  /// enough for a sum checked after run() joins the workers.
  std::atomic<std::uint64_t> work_done{0};
};

// One node of the random task tree. `tag` uniquely identifies the node
// so work_done is a deterministic function of the shape alone.
void random_task(TaskCtx& ctx, const std::shared_ptr<ProgramState>& st,
                 ProgramShape shape, std::uint64_t tag, int depth) {
  ctx.function_boundary();
  // Node-local deterministic RNG: independent of scheduling.
  Rng rng(shape.seed ^ (tag * 0x9e3779b97f4a7c15ULL));

  const auto work = 1 + rng.below(200);
  ctx.compute(static_cast<Cycles>(work));
  st->work_done.fetch_add(tag, std::memory_order_relaxed);

  if (rng.chance(0.4) && !st->locks.empty()) {
    const LockId lk = st->locks[rng.below(st->locks.size())];
    LockGuard guard(ctx, lk);
    ctx.compute(1 + rng.below(50));
  }
  if (rng.chance(0.4) && !st->cells.empty()) {
    const CellId cell = st->cells[rng.below(st->cells.size())];
    CellGuard guard(ctx, cell,
                    rng.chance(0.5) ? AccessMode::kRead
                                    : AccessMode::kWrite);
    ctx.compute(1 + rng.below(50));
  }
  if (rng.chance(0.6)) {
    ctx.mem_read(rng.below(1 << 20), 8 + static_cast<std::uint32_t>(
                                             rng.below(256)));
  }

  if (depth >= shape.max_depth) return;
  const auto children = rng.below(shape.max_children + 1);
  for (std::uint64_t i = 0; i < children; ++i) {
    const std::uint64_t child_tag = tag * 31 + i + 1;
    spawn_or_run(ctx, st->group,
                 [st, shape, child_tag, depth](TaskCtx& c) {
                   random_task(c, st, shape, child_tag, depth + 1);
                 });
  }
}

struct RunOutcome {
  Tick vt;
  std::uint64_t work;
};

RunOutcome run_random_program(const ProgramShape& shape, ArchConfig cfg) {
  Engine sim(std::move(cfg));
  auto st = std::make_shared<ProgramState>();
  const auto stats = sim.run([&](TaskCtx& ctx) {
    for (std::uint32_t i = 0; i < shape.num_locks; ++i) {
      st->locks.push_back(ctx.make_lock());
    }
    for (std::uint32_t i = 0; i < shape.num_cells; ++i) {
      st->cells.push_back(
          ctx.make_cell_at(64, i % ctx.num_cores()));
    }
    st->group = ctx.make_group();
    random_task(ctx, st, shape, 1, 0);
    ctx.join(st->group);
  });
  return RunOutcome{stats.completion_ticks, st->work_done.load()};
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, CompletesOnSharedMesh) {
  ProgramShape shape;
  shape.seed = GetParam();
  const auto out = run_random_program(shape, ArchConfig::shared_mesh(16));
  EXPECT_GT(out.vt, 0u);
  EXPECT_GT(out.work, 0u);
}

TEST_P(RandomPrograms, SameWorkOnEveryArchitecture) {
  // The *computation* (sum of task tags) is schedule-independent even
  // though spawn/inline decisions differ per architecture.
  ProgramShape shape;
  shape.seed = GetParam();
  const auto a = run_random_program(shape, ArchConfig::shared_mesh(1));
  const auto b = run_random_program(shape, ArchConfig::shared_mesh(16));
  const auto c =
      run_random_program(shape, ArchConfig::distributed_mesh(16));
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.work, c.work);
}

TEST_P(RandomPrograms, DeterministicVirtualTime) {
  ProgramShape shape;
  shape.seed = GetParam();
  const auto a =
      run_random_program(shape, ArchConfig::distributed_mesh(16));
  const auto b =
      run_random_program(shape, ArchConfig::distributed_mesh(16));
  EXPECT_EQ(a.vt, b.vt);
  EXPECT_EQ(a.work, b.work);
}

TEST_P(RandomPrograms, CompletesUnderTightDrift) {
  ProgramShape shape;
  shape.seed = GetParam();
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.drift_t_cycles = 5;  // maximum stalling pressure
  const auto out = run_random_program(shape, std::move(cfg));
  EXPECT_GT(out.vt, 0u);
}

TEST_P(RandomPrograms, CompletesOnCycleLevel) {
  ProgramShape shape;
  shape.seed = GetParam();
  Engine sim(ArchConfig::shared_mesh(8), ExecutionMode::kCycleLevel);
  auto st = std::make_shared<ProgramState>();
  (void)sim.run([&](TaskCtx& ctx) {
    st->group = ctx.make_group();
    st->locks.push_back(ctx.make_lock());
    st->cells.push_back(ctx.make_cell(32));
    random_task(ctx, st, shape, 1, 0);
    ctx.join(st->group);
  });
  EXPECT_GT(st->work_done.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Cross-host property sweep (labeled `chaos` in CMake): for each seed,
// with and without an armed fault plan, the schedule-independent
// computation (work_done) agrees across the sequential host and the
// parallel host at 1/2/4 shards, the 1-shard parallel run matches the
// sequential virtual time bit-for-bit, and every configuration is
// reproducible run-to-run.
// ---------------------------------------------------------------------

ArchConfig cross_host_config(bool faults) {
  ArchConfig cfg = ArchConfig::distributed_mesh(16);
  if (faults) {
    cfg.fault.seed = 101;
    cfg.fault.msg_delay_prob = 0.1;
    cfg.fault.msg_dup_prob = 0.05;
    cfg.fault.msg_drop_prob = 0.05;
    cfg.fault.stall_prob = 0.1;
    cfg.fault.spawn_fail_prob = 0.05;
    cfg.fault.mem_spike_prob = 0.05;
  }
  return cfg;
}

class CrossHost
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(CrossHost, WorkAgreesAndTimingIsShardDeterministic) {
  const auto [seed, faults] = GetParam();
  ProgramShape shape;
  shape.seed = seed;

  const RunOutcome seq =
      run_random_program(shape, cross_host_config(faults));
  EXPECT_GT(seq.work, 0u);

  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    ArchConfig cfg = cross_host_config(faults);
    cfg.host.mode = HostMode::kParallel;
    cfg.host.threads = 2;
    cfg.host.shards = shards;
    const RunOutcome par = run_random_program(shape, cfg);

    // The computation is schedule-independent everywhere...
    EXPECT_EQ(par.work, seq.work)
        << "seed " << seed << ", shards " << shards
        << (faults ? ", faults on" : ", faults off");
    // ...and the simulated timing is a pure function of the shard
    // count: 1 shard degenerates to the sequential engine, and every
    // configuration reproduces itself exactly.
    if (shards == 1) {
      EXPECT_EQ(par.vt, seq.vt) << "seed " << seed
                                << (faults ? ", faults on" : ", faults off");
    }
    const RunOutcome again = run_random_program(shape, cfg);
    EXPECT_EQ(again.vt, par.vt)
        << "seed " << seed << ", shards " << shards << " not reproducible";
    EXPECT_EQ(again.work, par.work);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByFaults, CrossHost,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 7),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, bool>>&
           info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_faulty" : "_clean");
    });

}  // namespace
}  // namespace simany
