// Property/fuzz tests: randomly generated well-formed task programs
// must complete, verify, and be deterministic on every architecture.
//
// The generator builds a random task tree from a seed: each task does
// random annotated compute/memory work, optionally takes a random lock
// or cell, spawns a random number of children (conditionally) and
// joins them. Well-formedness (locks released, groups joined, no
// cycles) is by construction; everything else — depth, fan-out, sizes,
// contention — varies with the seed.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "config/arch_config.h"
#include "core/engine.h"

namespace simany {
namespace {

struct ProgramShape {
  std::uint64_t seed = 0;
  int max_depth = 4;
  int max_children = 4;
  std::uint32_t num_locks = 3;
  std::uint32_t num_cells = 5;
};

struct ProgramState {
  std::vector<LockId> locks;
  std::vector<CellId> cells;
  GroupId group = kInvalidGroup;
  std::uint64_t work_done = 0;  // host-side verification counter
};

// One node of the random task tree. `tag` uniquely identifies the node
// so work_done is a deterministic function of the shape alone.
void random_task(TaskCtx& ctx, const std::shared_ptr<ProgramState>& st,
                 ProgramShape shape, std::uint64_t tag, int depth) {
  ctx.function_boundary();
  // Node-local deterministic RNG: independent of scheduling.
  Rng rng(shape.seed ^ (tag * 0x9e3779b97f4a7c15ULL));

  const auto work = 1 + rng.below(200);
  ctx.compute(static_cast<Cycles>(work));
  st->work_done += tag;

  if (rng.chance(0.4) && !st->locks.empty()) {
    const LockId lk = st->locks[rng.below(st->locks.size())];
    LockGuard guard(ctx, lk);
    ctx.compute(1 + rng.below(50));
  }
  if (rng.chance(0.4) && !st->cells.empty()) {
    const CellId cell = st->cells[rng.below(st->cells.size())];
    CellGuard guard(ctx, cell,
                    rng.chance(0.5) ? AccessMode::kRead
                                    : AccessMode::kWrite);
    ctx.compute(1 + rng.below(50));
  }
  if (rng.chance(0.6)) {
    ctx.mem_read(rng.below(1 << 20), 8 + static_cast<std::uint32_t>(
                                             rng.below(256)));
  }

  if (depth >= shape.max_depth) return;
  const auto children = rng.below(shape.max_children + 1);
  for (std::uint64_t i = 0; i < children; ++i) {
    const std::uint64_t child_tag = tag * 31 + i + 1;
    spawn_or_run(ctx, st->group,
                 [st, shape, child_tag, depth](TaskCtx& c) {
                   random_task(c, st, shape, child_tag, depth + 1);
                 });
  }
}

struct RunOutcome {
  Tick vt;
  std::uint64_t work;
};

RunOutcome run_random_program(const ProgramShape& shape, ArchConfig cfg) {
  Engine sim(std::move(cfg));
  auto st = std::make_shared<ProgramState>();
  const auto stats = sim.run([&](TaskCtx& ctx) {
    for (std::uint32_t i = 0; i < shape.num_locks; ++i) {
      st->locks.push_back(ctx.make_lock());
    }
    for (std::uint32_t i = 0; i < shape.num_cells; ++i) {
      st->cells.push_back(
          ctx.make_cell_at(64, i % ctx.num_cores()));
    }
    st->group = ctx.make_group();
    random_task(ctx, st, shape, 1, 0);
    ctx.join(st->group);
  });
  return RunOutcome{stats.completion_ticks, st->work_done};
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, CompletesOnSharedMesh) {
  ProgramShape shape;
  shape.seed = GetParam();
  const auto out = run_random_program(shape, ArchConfig::shared_mesh(16));
  EXPECT_GT(out.vt, 0u);
  EXPECT_GT(out.work, 0u);
}

TEST_P(RandomPrograms, SameWorkOnEveryArchitecture) {
  // The *computation* (sum of task tags) is schedule-independent even
  // though spawn/inline decisions differ per architecture.
  ProgramShape shape;
  shape.seed = GetParam();
  const auto a = run_random_program(shape, ArchConfig::shared_mesh(1));
  const auto b = run_random_program(shape, ArchConfig::shared_mesh(16));
  const auto c =
      run_random_program(shape, ArchConfig::distributed_mesh(16));
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.work, c.work);
}

TEST_P(RandomPrograms, DeterministicVirtualTime) {
  ProgramShape shape;
  shape.seed = GetParam();
  const auto a =
      run_random_program(shape, ArchConfig::distributed_mesh(16));
  const auto b =
      run_random_program(shape, ArchConfig::distributed_mesh(16));
  EXPECT_EQ(a.vt, b.vt);
  EXPECT_EQ(a.work, b.work);
}

TEST_P(RandomPrograms, CompletesUnderTightDrift) {
  ProgramShape shape;
  shape.seed = GetParam();
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.drift_t_cycles = 5;  // maximum stalling pressure
  const auto out = run_random_program(shape, std::move(cfg));
  EXPECT_GT(out.vt, 0u);
}

TEST_P(RandomPrograms, CompletesOnCycleLevel) {
  ProgramShape shape;
  shape.seed = GetParam();
  Engine sim(ArchConfig::shared_mesh(8), ExecutionMode::kCycleLevel);
  auto st = std::make_shared<ProgramState>();
  (void)sim.run([&](TaskCtx& ctx) {
    st->group = ctx.make_group();
    st->locks.push_back(ctx.make_lock());
    st->cells.push_back(ctx.make_cell(32));
    random_task(ctx, st, shape, 1, 0);
    ctx.join(st->group);
  });
  EXPECT_GT(st->work_done, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace simany
