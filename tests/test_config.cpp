#include "config/arch_config.h"

#include <gtest/gtest.h>

namespace simany {
namespace {

TEST(ArchConfig, SharedMeshDefaultsMatchPaper) {
  const auto cfg = ArchConfig::shared_mesh(64);
  EXPECT_EQ(cfg.num_cores(), 64u);
  EXPECT_EQ(cfg.mem.model, mem::MemoryModel::kShared);
  EXPECT_EQ(cfg.mem.l1_latency_cycles, 1u);
  EXPECT_EQ(cfg.mem.shared_latency_cycles, 10u);
  EXPECT_FALSE(cfg.mem.coherence_timing);
  EXPECT_EQ(cfg.drift_t_cycles, 100u);
  EXPECT_EQ(cfg.runtime.task_start_cycles, 10u);
  EXPECT_EQ(cfg.runtime.join_switch_cycles, 15u);
  cfg.validate();
}

TEST(ArchConfig, DistributedMeshDefaults) {
  const auto cfg = ArchConfig::distributed_mesh(16);
  EXPECT_EQ(cfg.mem.model, mem::MemoryModel::kDistributed);
  EXPECT_EQ(cfg.mem.l2_latency_cycles, 10u);
  // Base link: 1 cycle, 128 B/cycle (paper SS V).
  EXPECT_EQ(cfg.topology.link(0).props.latency, kTicksPerCycle);
  EXPECT_EQ(cfg.topology.link(0).props.bandwidth_bytes_per_cycle, 128u);
  cfg.validate();
}

TEST(ArchConfig, PolymorphicAlternatesSpeeds) {
  const auto cfg = ArchConfig::polymorphic(ArchConfig::shared_mesh(8));
  ASSERT_EQ(cfg.core_speeds.size(), 8u);
  for (std::uint32_t c = 0; c < 8; ++c) {
    if (c % 2 == 0) {
      EXPECT_EQ(cfg.speed_of(c), (Speed{1, 2}));
    } else {
      EXPECT_EQ(cfg.speed_of(c), (Speed{3, 2}));
    }
  }
  cfg.validate();
}

TEST(ArchConfig, PolymorphicPreservesTotalComputePower) {
  const auto cfg = ArchConfig::polymorphic(ArchConfig::shared_mesh(8));
  double total = 0;
  for (std::uint32_t c = 0; c < 8; ++c) {
    total += cfg.speed_of(c).as_double();
  }
  EXPECT_DOUBLE_EQ(total, 8.0);
}

TEST(ArchConfig, ClusteredLinkLatencies) {
  const auto cfg =
      ArchConfig::clustered(ArchConfig::distributed_mesh(16), 4);
  bool saw_intra = false, saw_inter = false;
  for (net::LinkId id = 0; id < cfg.topology.num_links(); ++id) {
    const Tick lat = cfg.topology.link(id).props.latency;
    if (lat == kTicksPerCycle / 2) saw_intra = true;
    if (lat == 4 * kTicksPerCycle) saw_inter = true;
  }
  EXPECT_TRUE(saw_intra);
  EXPECT_TRUE(saw_inter);
  cfg.validate();
}

TEST(ArchConfig, WithCoherenceOnlyTogglesTiming) {
  const auto base = ArchConfig::shared_mesh(4);
  const auto coh = ArchConfig::with_coherence(base);
  EXPECT_FALSE(base.mem.coherence_timing);
  EXPECT_TRUE(coh.mem.coherence_timing);
  EXPECT_EQ(coh.mem.model, base.mem.model);
}

TEST(ArchConfig, SpeedOfDefaultsToUnit) {
  const auto cfg = ArchConfig::shared_mesh(4);
  EXPECT_TRUE(cfg.speed_of(2).is_unit());
}

TEST(ArchConfig, ValidateRejectsSpeedSizeMismatch) {
  auto cfg = ArchConfig::shared_mesh(4);
  cfg.core_speeds = {Speed{1, 1}, Speed{1, 1}};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ArchConfig, ValidateRejectsZeroSpeed) {
  auto cfg = ArchConfig::shared_mesh(2);
  cfg.core_speeds = {Speed{0, 1}, Speed{1, 1}};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ArchConfig, ValidateRejectsDisconnectedTopology) {
  auto cfg = ArchConfig::shared_mesh(4);
  net::Topology t(4);
  t.add_link(0, 1);
  cfg.topology = std::move(t);
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ArchConfig, ValidateRejectsZeroQueueCapacity) {
  auto cfg = ArchConfig::shared_mesh(4);
  cfg.runtime.task_queue_capacity = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ArchConfig, DriftTicksConversion) {
  auto cfg = ArchConfig::shared_mesh(1);
  cfg.drift_t_cycles = 50;
  EXPECT_EQ(cfg.drift_ticks(), ticks(50));
}

}  // namespace
}  // namespace simany
