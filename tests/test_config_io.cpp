#include "config/config_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace simany {
namespace {

TEST(ConfigIo, MinimalConfig) {
  std::stringstream in("cores 16\n");
  const auto cfg = parse_config(in);
  EXPECT_EQ(cfg.num_cores(), 16u);
  EXPECT_EQ(cfg.mem.model, mem::MemoryModel::kShared);
  EXPECT_EQ(cfg.drift_t_cycles, 100u);
}

TEST(ConfigIo, FullScalarSettings) {
  std::stringstream in(
      "cores 8\n"
      "memory distributed\n"
      "coherence on\n"
      "drift_t 250\n"
      "sync bounded-slack\n"
      "seed 77\n"
      "l1_latency 2\n"
      "shared_latency 20\n"
      "l2_latency 12\n"
      "line_bytes 64\n"
      "task_start 5\n"
      "join_switch 7\n"
      "msg_handle 3\n"
      "task_queue 4\n"
      "cl_quantum 8\n"
      "routing latency\n"
      "speed_aware_dispatch on\n"
      "broadcast_occupancy on\n");
  const auto cfg = parse_config(in);
  EXPECT_EQ(cfg.mem.model, mem::MemoryModel::kDistributed);
  EXPECT_TRUE(cfg.mem.coherence_timing);
  EXPECT_EQ(cfg.drift_t_cycles, 250u);
  EXPECT_EQ(cfg.sync_scheme, SyncScheme::kBoundedSlack);
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_EQ(cfg.mem.l1_latency_cycles, 2u);
  EXPECT_EQ(cfg.mem.shared_latency_cycles, 20u);
  EXPECT_EQ(cfg.mem.l2_latency_cycles, 12u);
  EXPECT_EQ(cfg.mem.line_bytes, 64u);
  EXPECT_EQ(cfg.runtime.task_start_cycles, 5u);
  EXPECT_EQ(cfg.runtime.join_switch_cycles, 7u);
  EXPECT_EQ(cfg.runtime.msg_handle_cycles, 3u);
  EXPECT_EQ(cfg.runtime.task_queue_capacity, 4u);
  EXPECT_EQ(cfg.cl_quantum_cycles, 8u);
  EXPECT_EQ(cfg.network.routing, net::RouteWeighting::kLatency);
  EXPECT_TRUE(cfg.runtime.speed_aware_dispatch);
  EXPECT_TRUE(cfg.runtime.broadcast_occupancy);
}

TEST(ConfigIo, TopologyPresets) {
  for (const char* topo : {"mesh", "torus", "ring", "crossbar"}) {
    std::stringstream in(std::string("cores 16\ntopology ") + topo + "\n");
    const auto cfg = parse_config(in);
    EXPECT_TRUE(cfg.topology.connected()) << topo;
    EXPECT_EQ(cfg.num_cores(), 16u) << topo;
  }
}

TEST(ConfigIo, ClusteredPreset) {
  std::stringstream in("cores 16\ntopology clustered 4\n");
  const auto cfg = parse_config(in);
  bool saw_inter = false;
  for (net::LinkId id = 0; id < cfg.topology.num_links(); ++id) {
    if (cfg.topology.link(id).props.latency == 4 * kTicksPerCycle) {
      saw_inter = true;
    }
  }
  EXPECT_TRUE(saw_inter);
}

TEST(ConfigIo, FractionalLinkLatency) {
  std::stringstream in("cores 4\nlink_latency 0.5\n");
  const auto cfg = parse_config(in);
  EXPECT_EQ(cfg.topology.link(0).props.latency, kTicksPerCycle / 2);
}

TEST(ConfigIo, PolymorphicAndExplicitSpeeds) {
  std::stringstream in(
      "cores 4\n"
      "polymorphic\n"
      "speed 3 2/1\n");
  const auto cfg = parse_config(in);
  EXPECT_EQ(cfg.speed_of(0), (Speed{1, 2}));
  EXPECT_EQ(cfg.speed_of(1), (Speed{3, 2}));
  EXPECT_EQ(cfg.speed_of(3), (Speed{2, 1}));  // override wins
}

TEST(ConfigIo, ExplicitLinksOverridePreset) {
  std::stringstream in(
      "cores 3\n"
      "link 0 1 24 64\n"
      "link 1 2 12 128\n");
  const auto cfg = parse_config(in);
  EXPECT_EQ(cfg.topology.num_links(), 2u);
  EXPECT_EQ(cfg.topology.link(0).props.latency, 24u);
  EXPECT_EQ(cfg.topology.link(0).props.bandwidth_bytes_per_cycle, 64u);
}

TEST(ConfigIo, SaveParseRoundTrip) {
  ArchConfig original =
      ArchConfig::polymorphic(ArchConfig::distributed_mesh(16));
  original.drift_t_cycles = 500;
  original.seed = 9;
  original.runtime.speed_aware_dispatch = true;
  original.mem.coherence_timing = true;

  std::stringstream ss;
  save_config(original, ss);
  const auto parsed = parse_config(ss);

  EXPECT_EQ(parsed.num_cores(), original.num_cores());
  EXPECT_EQ(parsed.mem.model, original.mem.model);
  EXPECT_EQ(parsed.mem.coherence_timing, original.mem.coherence_timing);
  EXPECT_EQ(parsed.drift_t_cycles, original.drift_t_cycles);
  EXPECT_EQ(parsed.seed, original.seed);
  EXPECT_EQ(parsed.runtime.speed_aware_dispatch,
            original.runtime.speed_aware_dispatch);
  EXPECT_EQ(parsed.topology.num_links(), original.topology.num_links());
  for (std::uint32_t c = 0; c < 16; ++c) {
    EXPECT_EQ(parsed.speed_of(c), original.speed_of(c));
  }
  for (net::LinkId id = 0; id < original.topology.num_links(); ++id) {
    EXPECT_EQ(parsed.topology.link(id).props.latency,
              original.topology.link(id).props.latency);
  }
}

TEST(ConfigIo, FaultPlanKeys) {
  std::stringstream in(
      "cores 16\n"
      "fault_seed 42\n"
      "fault_msg_delay 0.1 300\n"
      "fault_msg_dup 0.05\n"
      "fault_msg_drop 0.02\n"
      "fault_retry 6 80\n"
      "fault_stall 0.2 700\n"
      "fault_spawn_fail 0.15\n"
      "fault_mem_spike 0.1 150\n"
      "fault_dead_cores 2\n"
      "fault_dead 7\n"
      "fault_dead 11\n");
  const auto cfg = parse_config(in);
  EXPECT_EQ(cfg.fault.seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.fault.msg_delay_prob, 0.1);
  EXPECT_EQ(cfg.fault.msg_delay_cycles, 300u);
  EXPECT_DOUBLE_EQ(cfg.fault.msg_dup_prob, 0.05);
  EXPECT_DOUBLE_EQ(cfg.fault.msg_drop_prob, 0.02);
  EXPECT_EQ(cfg.fault.retry_limit, 6u);
  EXPECT_EQ(cfg.fault.retry_timeout_cycles, 80u);
  EXPECT_DOUBLE_EQ(cfg.fault.stall_prob, 0.2);
  EXPECT_EQ(cfg.fault.stall_cycles, 700u);
  EXPECT_DOUBLE_EQ(cfg.fault.spawn_fail_prob, 0.15);
  EXPECT_DOUBLE_EQ(cfg.fault.mem_spike_prob, 0.1);
  EXPECT_EQ(cfg.fault.mem_spike_cycles, 150u);
  EXPECT_EQ(cfg.fault.dead_cores, 2u);
  ASSERT_EQ(cfg.fault.dead_core_list.size(), 2u);
  EXPECT_EQ(cfg.fault.dead_core_list[0], 7u);
  EXPECT_EQ(cfg.fault.dead_core_list[1], 11u);
  EXPECT_TRUE(cfg.fault.enabled());
}

TEST(ConfigIo, FaultPlanRoundTrip) {
  ArchConfig original = ArchConfig::shared_mesh(16);
  original.fault.seed = 7;
  original.fault.msg_delay_prob = 0.25;
  original.fault.msg_delay_cycles = 120;
  original.fault.msg_drop_prob = 0.05;
  original.fault.retry_limit = 4;
  original.fault.retry_timeout_cycles = 60;
  original.fault.stall_prob = 0.5;
  original.fault.stall_cycles = 900;
  original.fault.dead_cores = 3;
  original.fault.dead_core_list = {2, 9};

  std::stringstream ss;
  save_config(original, ss);
  const auto parsed = parse_config(ss);
  EXPECT_EQ(parsed.fault.seed, original.fault.seed);
  EXPECT_DOUBLE_EQ(parsed.fault.msg_delay_prob,
                   original.fault.msg_delay_prob);
  EXPECT_EQ(parsed.fault.msg_delay_cycles, original.fault.msg_delay_cycles);
  EXPECT_DOUBLE_EQ(parsed.fault.msg_drop_prob,
                   original.fault.msg_drop_prob);
  EXPECT_EQ(parsed.fault.retry_limit, original.fault.retry_limit);
  EXPECT_EQ(parsed.fault.retry_timeout_cycles,
            original.fault.retry_timeout_cycles);
  EXPECT_DOUBLE_EQ(parsed.fault.stall_prob, original.fault.stall_prob);
  EXPECT_EQ(parsed.fault.stall_cycles, original.fault.stall_cycles);
  EXPECT_EQ(parsed.fault.dead_cores, original.fault.dead_cores);
  EXPECT_EQ(parsed.fault.dead_core_list, original.fault.dead_core_list);
  // Identical dead sets => identical simulated machines.
  EXPECT_EQ(parsed.fault.dead_set(16), original.fault.dead_set(16));
}

TEST(ConfigIo, FaultFreeConfigEmitsNoFaultBlock) {
  std::stringstream ss;
  save_config(ArchConfig::shared_mesh(4), ss);
  EXPECT_EQ(ss.str().find("fault_"), std::string::npos);
}

TEST(ConfigIo, TelemetryKeysRoundTrip) {
  std::stringstream in(
      "cores 16\n"
      "metrics_interval 250\n"
      "profile_host on\n");
  const auto cfg = parse_config(in);
  EXPECT_EQ(cfg.obs.metrics_interval_cycles, 250u);
  EXPECT_TRUE(cfg.obs.profile_host);

  std::stringstream ss;
  save_config(cfg, ss);
  const auto parsed = parse_config(ss);
  EXPECT_EQ(parsed.obs.metrics_interval_cycles, 250u);
  EXPECT_TRUE(parsed.obs.profile_host);
}

TEST(ConfigIo, UninstrumentedConfigEmitsNoTelemetryKeys) {
  std::stringstream ss;
  save_config(ArchConfig::shared_mesh(4), ss);
  EXPECT_EQ(ss.str().find("metrics_interval"), std::string::npos);
  EXPECT_EQ(ss.str().find("profile_host"), std::string::npos);
}

TEST(ConfigIo, Errors) {
  std::stringstream no_cores("memory shared\n");
  EXPECT_THROW((void)parse_config(no_cores), std::runtime_error);
  std::stringstream bad_key("cores 4\nwibble 3\n");
  EXPECT_THROW((void)parse_config(bad_key), std::runtime_error);
  std::stringstream bad_mem("cores 4\nmemory sideways\n");
  EXPECT_THROW((void)parse_config(bad_mem), std::runtime_error);
  std::stringstream bad_speed("cores 4\nspeed 9 1/1\n");
  EXPECT_THROW((void)parse_config(bad_speed), std::runtime_error);
  std::stringstream zero_speed("cores 4\nspeed 0 0/1\n");
  EXPECT_THROW((void)parse_config(zero_speed), std::runtime_error);
  std::stringstream bad_prob("cores 4\nfault_msg_drop 1.5\n");
  EXPECT_THROW((void)parse_config(bad_prob), std::runtime_error);
  EXPECT_THROW((void)load_config_file("/nonexistent/x.cfg"),
               std::runtime_error);
}

TEST(ConfigIo, TopologyFileKeyword) {
  const char* path = "config_io_test.topo";
  {
    std::ofstream out(path);
    net::Topology::ring(6).save(out);
  }
  std::stringstream in(std::string("cores 6\ntopology_file ") + path +
                       "\n");
  const auto cfg = parse_config(in);
  EXPECT_EQ(cfg.topology.num_cores(), 6u);
  EXPECT_EQ(cfg.topology.num_links(), 6u);  // ring
  std::remove(path);
}

TEST(ConfigIo, CommentsIgnored) {
  std::stringstream in(
      "# header\n"
      "cores 4   # four cores\n"
      "\n"
      "drift_t 42\n");
  const auto cfg = parse_config(in);
  EXPECT_EQ(cfg.drift_t_cycles, 42u);
}

}  // namespace
}  // namespace simany
