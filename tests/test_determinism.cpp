// Full-suite determinism: identical (seed, config) runs must produce
// bit-identical statistics, for every dwarf, memory model and mode.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"

namespace simany {
namespace {

constexpr double kTiny = 0.04;

struct Fingerprint {
  Tick completion;
  std::uint64_t spawned, inlined, migrated, messages, stalls, switches;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint fingerprint(const SimStats& s) {
  return Fingerprint{s.completion_ticks, s.tasks_spawned, s.tasks_inlined,
                     s.tasks_migrated,  s.messages,      s.sync_stalls,
                     s.fiber_switches};
}

class Determinism
    : public ::testing::TestWithParam<std::tuple<const char*, bool>> {};

TEST_P(Determinism, IdenticalStatsAcrossRepeatedRuns) {
  const auto [name, distributed] = GetParam();
  auto once = [&, nm = name, dist = distributed] {
    ArchConfig cfg = dist ? ArchConfig::distributed_mesh(16)
                          : ArchConfig::shared_mesh(16);
    Engine sim(cfg);
    return fingerprint(
        sim.run(dwarfs::dwarf_by_name(nm).make_root(17, kTiny)));
  };
  const auto a = once();
  const auto b = once();
  EXPECT_TRUE(a == b) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDwarfs, Determinism,
    ::testing::Combine(
        ::testing::Values("barnes-hut", "connected-components", "dijkstra",
                          "quicksort", "spmxv", "octree"),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<const char*, bool>>& info) {
      std::string n = std::get<0>(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n + (std::get<1>(info.param) ? "_dist" : "_shared");
    });

TEST(Determinism, DifferentSeedsDiffer) {
  auto run = [](std::uint64_t seed) {
    Engine sim(ArchConfig::shared_mesh(8));
    return sim.run(dwarfs::dwarf_by_name("quicksort").make_root(seed, kTiny))
        .completion_ticks;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(Determinism, ConfigSeedChangesBranchOutcomes) {
  // The config seed drives the probabilistic branch predictor.
  auto run = [](std::uint64_t seed) {
    ArchConfig cfg = ArchConfig::shared_mesh(1);
    cfg.seed = seed;
    Engine sim(cfg);
    timing::InstMix mix;
    mix.branches = 40;
    return sim
        .run([mix](TaskCtx& ctx) {
          for (int i = 0; i < 50; ++i) ctx.compute(mix);
        })
        .completion_ticks;
  };
  EXPECT_NE(run(1), run(99));
  EXPECT_EQ(run(1), run(1));
}

}  // namespace
}  // namespace simany
