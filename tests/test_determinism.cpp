// Full-suite determinism: identical (seed, config) runs must produce
// bit-identical statistics, for every dwarf, memory model and mode.
#include <gtest/gtest.h>

#include <utility>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/engine_observer.h"
#include "dwarfs/dwarfs.h"

namespace simany {
namespace {

constexpr double kTiny = 0.04;

struct Fingerprint {
  Tick completion;
  std::uint64_t spawned, inlined, migrated, messages, stalls, switches;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint fingerprint(const SimStats& s) {
  return Fingerprint{s.completion_ticks, s.tasks_spawned, s.tasks_inlined,
                     s.tasks_migrated,  s.messages,      s.sync_stalls,
                     s.fiber_switches};
}

class Determinism
    : public ::testing::TestWithParam<std::tuple<const char*, bool>> {};

TEST_P(Determinism, IdenticalStatsAcrossRepeatedRuns) {
  const auto [name, distributed] = GetParam();
  auto once = [&, nm = name, dist = distributed] {
    ArchConfig cfg = dist ? ArchConfig::distributed_mesh(16)
                          : ArchConfig::shared_mesh(16);
    Engine sim(cfg);
    return fingerprint(
        sim.run(dwarfs::dwarf_by_name(nm).make_root(17, kTiny)));
  };
  const auto a = once();
  const auto b = once();
  EXPECT_TRUE(a == b) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDwarfs, Determinism,
    ::testing::Combine(
        ::testing::Values("barnes-hut", "connected-components", "dijkstra",
                          "quicksort", "spmxv", "octree"),
        ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<const char*, bool>>& info) {
      std::string n = std::get<0>(info.param);
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n + (std::get<1>(info.param) ? "_dist" : "_shared");
    });

// Intermediate-state determinism: not just the final statistics but
// the engine's full canonical state image (src/snapshot's codec,
// exposed as Engine::state_digest) must agree at every scheduling
// quantum. Catches divergence that cancels out by run end — exactly
// the class of bug the snapshot replay-verify protocol leans on.
class StateDigestProbe final : public EngineObserver {
 public:
  void on_quantum_end(const Engine& e) override {
    // Sample sparsely: hashing the full image is O(state), so probe a
    // rolling cadence rather than every quantum.
    if (++count_ % 32 != 0) return;
    h_ ^= e.state_digest() + 0x9e3779b97f4a7c15ULL + (h_ << 6) + (h_ >> 2);
  }

  [[nodiscard]] std::uint64_t rolling() const noexcept { return h_; }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t h_ = 0;
};

TEST(Determinism, IntermediateStateDigestsMatchAcrossRuns) {
  auto once = [] {
    Engine sim(ArchConfig::shared_mesh(16));
    StateDigestProbe probe;
    sim.set_observer(&probe);
    const SimStats st =
        sim.run(dwarfs::dwarf_by_name("quicksort").make_root(17, kTiny));
    return std::pair<std::uint64_t, Tick>{probe.rolling(),
                                          st.completion_ticks};
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.first, b.first) << "per-quantum state images diverged";
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first, 0u) << "probe never sampled";
}

TEST(Determinism, IntermediateStateDigestsDifferAcrossSeeds) {
  auto once = [](std::uint64_t seed) {
    Engine sim(ArchConfig::shared_mesh(16));
    StateDigestProbe probe;
    sim.set_observer(&probe);
    (void)sim.run(dwarfs::dwarf_by_name("quicksort").make_root(seed, kTiny));
    return probe.rolling();
  };
  EXPECT_NE(once(17), once(18));
}

TEST(Determinism, DifferentSeedsDiffer) {
  auto run = [](std::uint64_t seed) {
    Engine sim(ArchConfig::shared_mesh(8));
    return sim.run(dwarfs::dwarf_by_name("quicksort").make_root(seed, kTiny))
        .completion_ticks;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(Determinism, ConfigSeedChangesBranchOutcomes) {
  // The config seed drives the probabilistic branch predictor.
  auto run = [](std::uint64_t seed) {
    ArchConfig cfg = ArchConfig::shared_mesh(1);
    cfg.seed = seed;
    Engine sim(cfg);
    timing::InstMix mix;
    mix.branches = 40;
    return sim
        .run([mix](TaskCtx& ctx) {
          for (int i = 0; i < 50; ++i) ctx.compute(mix);
        })
        .completion_ticks;
  };
  EXPECT_NE(run(1), run(99));
  EXPECT_EQ(run(1), run(1));
}

}  // namespace
}  // namespace simany
