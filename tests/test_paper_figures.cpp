// Reconstructions of the paper's illustrative figures (SS II) as
// executable scenarios, plus whole-feature integration.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"
#include "stats/trace_sinks.h"

namespace simany {
namespace {

// Figure 1: a 3-core line where only the left core makes progress; the
// two cores to its right are stalled waiting for it and wake up
// gradually as its virtual-time updates propagate.
TEST(PaperFigures, Fig1WakePropagationAlongALine) {
  ArchConfig cfg = ArchConfig::shared_mesh(3);
  net::Topology line(3);
  line.add_link(0, 1);
  line.add_link(1, 2);
  cfg.topology = std::move(line);
  cfg.drift_t_cycles = 20;
  Engine sim(std::move(cfg));

  // Record stall and wake events per core.
  struct Recorder final : TraceSink {
    std::vector<std::pair<CoreId, Tick>> stalls, wakes;
    void on_stall(CoreId core, Tick at) override {
      stalls.emplace_back(core, at);
    }
    void on_wake(CoreId core, Tick at, Tick) override {
      wakes.emplace_back(core, at);
    }
  } rec;
  sim.set_trace(&rec);

  (void)sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    // Place one long-running task on each of cores 1 and 2 (they will
    // race ahead and stall), while core 0 advances slowly in tiny
    // steps, waking them gradually.
    ASSERT_TRUE(ctx.probe());
    ctx.spawn(g, [g](TaskCtx& c1) {
      if (c1.probe()) {
        c1.spawn(g, [](TaskCtx& c2) {
          for (int i = 0; i < 40; ++i) c2.compute(50);
        });
      }
      for (int i = 0; i < 40; ++i) c1.compute(50);
    });
    for (int i = 0; i < 2500; ++i) ctx.compute(1);
    ctx.join(g);
  });

  // The right cores must have stalled (they outrun core 0)...
  bool stalled_right = false;
  for (const auto& [core, at] : rec.stalls) {
    if (core != 0) stalled_right = true;
  }
  EXPECT_TRUE(stalled_right);
  // ...and woken again as core 0 caught up — repeatedly.
  std::size_t wakes_right = 0;
  for (const auto& [core, at] : rec.wakes) {
    if (core != 0) ++wakes_right;
  }
  EXPECT_GE(wakes_right, 2u);
  // Wake times are monotone per core (times only move forward).
  Tick last = 0;
  for (const auto& [core, at] : rec.wakes) {
    if (core == 1) {
      EXPECT_GE(at, last);
      last = at;
    }
  }
}

// Everything at once: polymorphic clustered distributed machine with
// coherence-style runtime messages, broadcast occupancy proxies,
// speed-aware dispatch, a tight drift bound and tracing attached —
// every dwarf must still verify.
TEST(PaperFigures, KitchenSinkIntegration) {
  for (const auto& spec : dwarfs::all_dwarfs()) {
    ArchConfig cfg = ArchConfig::clustered(
        ArchConfig::polymorphic(ArchConfig::distributed_mesh(16)), 4);
    cfg.drift_t_cycles = 30;
    cfg.runtime.broadcast_occupancy = true;
    cfg.runtime.speed_aware_dispatch = true;
    cfg.network.router_penalty_cycles = 2;
    Engine sim(std::move(cfg));
    stats::MessageHistogram histogram;
    sim.set_trace(&histogram);
    const auto stats = sim.run(spec.make_root(3, 0.04));
    EXPECT_GT(stats.completion_cycles(), 0u) << spec.name;
    EXPECT_EQ(histogram.total(), stats.messages) << spec.name;
  }
}

TEST(PaperFigures, KitchenSinkIsDeterministic) {
  auto once = [] {
    ArchConfig cfg = ArchConfig::clustered(
        ArchConfig::polymorphic(ArchConfig::distributed_mesh(16)), 4);
    cfg.runtime.broadcast_occupancy = true;
    cfg.runtime.speed_aware_dispatch = true;
    Engine sim(std::move(cfg));
    return sim
        .run(dwarfs::dwarf_by_name("dijkstra").make_root(9, 0.04))
        .completion_ticks;
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
}  // namespace simany
