// Config-parsing hardening: arbitrary (truncated, garbage, hostile)
// input must produce a structured error — a std::runtime_error carrying
// the line number for lexical problems, a validation exception for
// semantic ones — and NEVER crash, wrap around, or silently accept
// trailing junk. Table-driven over a corpus of adversarial inputs.
#include "config/config_io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace simany {
namespace {

enum class Expect {
  kOk,          // parses and validates
  kParseError,  // std::runtime_error mentioning "config parse error"
  kAnyError,    // any std::exception (semantic validation may differ)
};

struct Case {
  const char* name;
  const char* text;
  Expect expect;
};

const std::vector<Case>& corpus() {
  static const std::vector<Case> cases = {
      // -- well-formed baselines ------------------------------------
      {"minimal", "cores 4\n", Expect::kOk},
      {"comments_only_after_cores", "cores 4\n# comment\n\n", Expect::kOk},
      {"full_guard_block",
       "cores 4\nguard_deadline_ms 100\nguard_max_vtime 5000\n"
       "guard_watchdog_rounds 8\nguard_poll_quanta 64\n"
       "guard_max_inbox 128\nguard_max_fibers 256\n",
       Expect::kOk},
      {"fault_wedge_ok", "cores 4\nfault_seed 9\nfault_wedge 2\n",
       Expect::kOk},
      {"speed_fraction", "cores 4\nspeed 0 3/2\n", Expect::kOk},
      {"dup_keys_last_wins", "cores 4\ndrift_t 10\ndrift_t 20\n",
       Expect::kOk},

      // -- structural garbage ---------------------------------------
      {"empty", "", Expect::kParseError},
      {"only_comment", "# nothing here\n", Expect::kParseError},
      {"missing_cores", "drift_t 100\n", Expect::kParseError},
      {"unknown_keyword", "cores 4\nfrobnicate 9\n", Expect::kParseError},
      {"missing_value", "cores\n", Expect::kParseError},
      {"missing_value_late", "cores 4\nseed\n", Expect::kParseError},
      {"truncated_mid_word", "cores 4\ntopolo", Expect::kParseError},
      {"binary_noise", "cores 4\n\x01\x02\x03 7\n", Expect::kParseError},

      // -- numeric garbage (the std::stoul crash class) -------------
      {"alpha_for_int", "cores four\n", Expect::kParseError},
      {"trailing_junk_int", "cores 12abc\n", Expect::kParseError},
      {"negative_u32", "cores -4\n", Expect::kParseError},
      {"plus_prefix", "cores +4\n", Expect::kParseError},
      {"float_for_int", "cores 4.5\n", Expect::kParseError},
      {"hex_not_accepted", "cores 0x10\n", Expect::kParseError},
      {"sci_notation_for_int", "seed 1e3\ncores 4\n", Expect::kParseError},
      {"u64_overflow", "cores 4\nseed 99999999999999999999999\n",
       Expect::kParseError},
      {"u32_range", "cores 4294967296\n", Expect::kAnyError},
      {"huge_drift", "cores 4\ndrift_t 18446744073709551616\n",
       Expect::kParseError},
      {"empty_after_strip", "cores \t\n", Expect::kParseError},

      // -- probability garbage --------------------------------------
      {"prob_above_one", "cores 4\nfault_drop 1.5\n", Expect::kParseError},
      {"prob_negative", "cores 4\nfault_drop -0.2\n", Expect::kParseError},
      {"prob_nan", "cores 4\nfault_drop nan\n", Expect::kParseError},
      {"prob_inf", "cores 4\nfault_drop inf\n", Expect::kParseError},
      {"prob_alpha", "cores 4\nfault_drop often\n", Expect::kParseError},
      {"prob_trailing", "cores 4\nfault_drop 0.5x\n", Expect::kParseError},

      // -- speed garbage --------------------------------------------
      {"speed_zero", "cores 4\nspeed 0 0\n", Expect::kParseError},
      {"speed_zero_den", "cores 4\nspeed 0 3/0\n", Expect::kParseError},
      {"speed_alpha", "cores 4\nspeed 0 fast\n", Expect::kParseError},
      {"speed_trailing_slash", "cores 4\nspeed 0 5/\n",
       Expect::kParseError},
      {"speed_leading_slash", "cores 4\nspeed 0 /5\n", Expect::kParseError},
      {"speed_double_slash", "cores 4\nspeed 0 1/2/3\n",
       Expect::kParseError},
      {"speed_core_out_of_range", "cores 4\nspeed 99 2\n",
       Expect::kAnyError},

      // -- enum / bool garbage --------------------------------------
      {"bad_bool", "cores 4\ncoherence maybe\n", Expect::kParseError},
      {"bad_memory_model", "cores 4\nmemory quantum\n",
       Expect::kParseError},
      {"bad_sync", "cores 4\nsync psychic\n", Expect::kParseError},
      {"bad_routing", "cores 4\nrouting scenic\n", Expect::kParseError},
      {"bad_host_mode", "cores 4\nhost_mode turbo\n", Expect::kParseError},
      {"bad_topology", "cores 4\ntopology pentagram\n", Expect::kAnyError},

      // -- link / latency garbage -----------------------------------
      {"link_latency_negative", "cores 4\nlink_latency -3\n",
       Expect::kParseError},
      {"link_latency_nan", "cores 4\nlink_latency nan\n",
       Expect::kParseError},
      {"link_bad_endpoint", "cores 4\nlink 0 zzz\n", Expect::kParseError},
      {"link_self_or_invalid", "cores 4\nlink 0 99\n", Expect::kAnyError},

      // -- guard / fault key garbage --------------------------------
      {"guard_deadline_alpha", "cores 4\nguard_deadline_ms soon\n",
       Expect::kParseError},
      {"guard_poll_zero", "cores 4\nguard_poll_quanta 0\n",
       Expect::kAnyError},
      {"guard_negative", "cores 4\nguard_max_inbox -1\n",
       Expect::kParseError},
      {"fault_wedge_alpha", "cores 4\nfault_wedge all\n",
       Expect::kParseError},
      {"fault_wedge_out_of_range", "cores 4\nfault_wedge 400\n",
       Expect::kAnyError},
      {"fault_dead_overflow", "cores 4\nfault_dead_cores 4294967296\n",
       Expect::kAnyError},
      {"fault_retry_garbage", "cores 4\nfault_retry x y\n",
       Expect::kParseError},
  };
  return cases;
}

TEST(ConfigHardening, CorpusNeverCrashes) {
  for (const Case& c : corpus()) {
    SCOPED_TRACE(c.name);
    std::stringstream in{std::string(c.text)};
    switch (c.expect) {
      case Expect::kOk: {
        EXPECT_NO_THROW({
          const ArchConfig cfg = parse_config(in);
          EXPECT_GT(cfg.num_cores(), 0u);
        });
        break;
      }
      case Expect::kParseError: {
        try {
          (void)parse_config(in);
          ADD_FAILURE() << "expected a parse error";
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("config parse error"),
                    std::string::npos)
              << e.what();
        } catch (const std::exception& e) {
          ADD_FAILURE() << "wrong exception type: " << e.what();
        }
        break;
      }
      case Expect::kAnyError: {
        try {
          (void)parse_config(in);
          ADD_FAILURE() << "expected an error";
        } catch (const std::exception&) {
          // Structured; which layer rejects it is an implementation
          // detail (parser or ArchConfig::validate).
        }
        break;
      }
    }
  }
}

TEST(ConfigHardening, ParseErrorsCarryLineNumbers) {
  std::stringstream in("cores 4\ndrift_t 10\nseed banana\n");
  try {
    (void)parse_config(in);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(ConfigHardening, GuardKeysParse) {
  std::stringstream in(
      "cores 8\n"
      "guard_deadline_ms 1500\n"
      "guard_max_vtime 1000000\n"
      "guard_watchdog_rounds 16\n"
      "guard_poll_quanta 128\n"
      "guard_max_inbox 64\n"
      "guard_max_fibers 512\n"
      "fault_wedge 3\n"
      "fault_wedge 5\n");
  const ArchConfig cfg = parse_config(in);
  EXPECT_EQ(cfg.guard.deadline_ms, 1500u);
  EXPECT_EQ(cfg.guard.max_vtime_cycles, 1000000u);
  EXPECT_EQ(cfg.guard.watchdog_rounds, 16u);
  EXPECT_EQ(cfg.guard.poll_quanta, 128u);
  EXPECT_EQ(cfg.guard.max_inbox_depth, 64u);
  EXPECT_EQ(cfg.guard.max_live_fibers, 512u);
  ASSERT_EQ(cfg.fault.wedge_core_list.size(), 2u);
  EXPECT_EQ(cfg.fault.wedge_core_list[0], 3u);
  EXPECT_EQ(cfg.fault.wedge_core_list[1], 5u);
}

TEST(ConfigHardening, GuardAndWedgeRoundTrip) {
  std::stringstream in(
      "cores 8\n"
      "guard_deadline_ms 1500\n"
      "guard_watchdog_rounds 16\n"
      "guard_poll_quanta 128\n"
      "fault_seed 11\n"
      "fault_wedge 3\n");
  const ArchConfig cfg = parse_config(in);
  std::stringstream out;
  save_config(cfg, out);
  const ArchConfig again = parse_config(out);
  EXPECT_EQ(again.guard.deadline_ms, 1500u);
  EXPECT_EQ(again.guard.watchdog_rounds, 16u);
  EXPECT_EQ(again.guard.poll_quanta, 128u);
  EXPECT_EQ(again.guard.max_vtime_cycles, 0u);
  ASSERT_EQ(again.fault.wedge_core_list.size(), 1u);
  EXPECT_EQ(again.fault.wedge_core_list[0], 3u);
  // Round-trip stability: saving the reparsed config is byte-identical.
  std::stringstream out2;
  save_config(again, out2);
  EXPECT_EQ(out.str(), out2.str());
}

TEST(ConfigHardening, UnguardedConfigEmitsNoGuardKeys) {
  std::stringstream in("cores 8\n");
  const ArchConfig cfg = parse_config(in);
  std::stringstream out;
  save_config(cfg, out);
  EXPECT_EQ(out.str().find("guard_"), std::string::npos);
  EXPECT_EQ(out.str().find("fault_wedge"), std::string::npos);
}

}  // namespace
}  // namespace simany
