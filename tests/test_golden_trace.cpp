// Golden-trace regression tests.
//
// The engine's trace.h event stream for a fixed (dwarf, architecture,
// seed) is part of the determinism contract: any change to scheduling,
// timing or protocol order shows up as a diff against a committed
// golden CSV. When a change is *intentional*, regenerate the goldens:
//
//   ./test_golden_trace --update-goldens
//
// then review and commit the updated files under tests/goldens/.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"
#include "stats/trace_sinks.h"

namespace simany {
namespace {

bool g_update_goldens = false;

std::string golden_path(const std::string& name) {
  return std::string(SIMANY_GOLDEN_DIR) + "/" + name + ".csv";
}

/// Runs `dwarf` on a small shared mesh under a fixed seed and returns
/// the full CSV event trace.
std::string capture_trace(const char* dwarf) {
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  Engine sim(cfg);
  std::ostringstream csv_out;
  stats::CsvTrace csv(csv_out);
  sim.set_trace(&csv);
  (void)sim.run(dwarfs::dwarf_by_name(dwarf).make_root(17, 0.05));
  return csv_out.str();
}

/// Point at the first differing line so a regression reads as "event N
/// changed", not as a wall of CSV.
void expect_matches_golden(const std::string& name,
                           const std::string& actual) {
  const std::string path = golden_path(name);
  if (g_update_goldens) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "updated golden " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run test_golden_trace --update-goldens and commit the result";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == actual) return;

  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line;
  std::string got_line;
  std::size_t lineno = 0;
  while (true) {
    const bool have_want = static_cast<bool>(std::getline(want, want_line));
    const bool have_got = static_cast<bool>(std::getline(got, got_line));
    ++lineno;
    if (!have_want && !have_got) break;
    if (!have_want || !have_got || want_line != got_line) {
      FAIL() << "trace for " << name << " diverges from " << path
             << " at line " << lineno << "\n  golden: "
             << (have_want ? want_line : "<end of file>")
             << "\n  actual: " << (have_got ? got_line : "<end of file>")
             << "\nIf the change is intentional, rerun with "
                "--update-goldens and commit the new golden.";
    }
  }
  FAIL() << "trace for " << name << " differs from golden " << path
         << " (same line count, unequal content)";
}

TEST(GoldenTrace, SpmxvEventStreamIsStable) {
  expect_matches_golden("spmxv_mesh8_seed17", capture_trace("spmxv"));
}

TEST(GoldenTrace, QuicksortEventStreamIsStable) {
  expect_matches_golden("quicksort_mesh8_seed17", capture_trace("quicksort"));
}

TEST(GoldenTrace, CaptureIsReproducibleInProcess) {
  EXPECT_EQ(capture_trace("spmxv"), capture_trace("spmxv"));
}

}  // namespace
}  // namespace simany

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-goldens") == 0) {
      simany::g_update_goldens = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
