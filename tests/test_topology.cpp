#include "net/topology.h"

#include <gtest/gtest.h>

#include <sstream>

namespace simany::net {
namespace {

TEST(Topology, MeshDimsFactorizations) {
  EXPECT_EQ(Topology::mesh_dims(1), (std::pair<std::uint32_t, std::uint32_t>{1, 1}));
  EXPECT_EQ(Topology::mesh_dims(8), (std::pair<std::uint32_t, std::uint32_t>{2, 4}));
  EXPECT_EQ(Topology::mesh_dims(64), (std::pair<std::uint32_t, std::uint32_t>{8, 8}));
  EXPECT_EQ(Topology::mesh_dims(256), (std::pair<std::uint32_t, std::uint32_t>{16, 16}));
  EXPECT_EQ(Topology::mesh_dims(1024), (std::pair<std::uint32_t, std::uint32_t>{32, 32}));
}

TEST(Topology, Mesh2dLinkCount) {
  // rows*(cols-1) + cols*(rows-1) links for an R x C mesh.
  const auto t = Topology::mesh2d(64);
  EXPECT_EQ(t.num_cores(), 64u);
  EXPECT_EQ(t.num_links(), 8u * 7 * 2);
}

TEST(Topology, Mesh2dInteriorDegreeIsFour) {
  const auto t = Topology::mesh2d(16);  // 4x4
  EXPECT_EQ(t.neighbors(5).size(), 4u);   // interior
  EXPECT_EQ(t.neighbors(0).size(), 2u);   // corner
  EXPECT_EQ(t.neighbors(1).size(), 3u);   // edge
}

TEST(Topology, MeshConnectivityAndDiameter) {
  const auto t = Topology::mesh2d(16);  // 4x4
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.diameter(), 6u);  // (4-1)+(4-1)
}

TEST(Topology, SingleCore) {
  const Topology t(1);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.diameter(), 0u);
  EXPECT_TRUE(t.neighbors(0).empty());
}

TEST(Topology, RingDiameter) {
  const auto t = Topology::ring(10);
  EXPECT_TRUE(t.connected());
  EXPECT_EQ(t.diameter(), 5u);
  for (CoreId c = 0; c < 10; ++c) EXPECT_EQ(t.neighbors(c).size(), 2u);
}

TEST(Topology, TorusShrinkDiameter) {
  const auto mesh = Topology::mesh2d(16);
  const auto torus = Topology::torus2d(16);
  EXPECT_LT(torus.diameter(), mesh.diameter());
  for (CoreId c = 0; c < 16; ++c) {
    EXPECT_EQ(torus.neighbors(c).size(), 4u);
  }
}

TEST(Topology, CrossbarDiameterOne) {
  const auto t = Topology::crossbar(8);
  EXPECT_EQ(t.diameter(), 1u);
  EXPECT_EQ(t.num_links(), 8u * 7 / 2);
}

TEST(Topology, ClusteredMeshLatencies) {
  LinkProps intra{kTicksPerCycle / 2, 128};
  LinkProps inter{4 * kTicksPerCycle, 128};
  const auto t = Topology::clustered_mesh2d(16, 4, intra, inter);
  EXPECT_EQ(t.num_cores(), 16u);
  // Both latencies must be present.
  bool has_intra = false, has_inter = false;
  for (LinkId id = 0; id < t.num_links(); ++id) {
    const Tick lat = t.link(id).props.latency;
    if (lat == intra.latency) has_intra = true;
    if (lat == inter.latency) has_inter = true;
  }
  EXPECT_TRUE(has_intra);
  EXPECT_TRUE(has_inter);
  // 4x4 mesh in 2x2 clusters of 2x2: cut links = 8.
  std::uint32_t inter_count = 0;
  for (LinkId id = 0; id < t.num_links(); ++id) {
    if (t.link(id).props.latency == inter.latency) ++inter_count;
  }
  EXPECT_EQ(inter_count, 8u);
}

TEST(Topology, LinkBetweenLookup) {
  const auto t = Topology::mesh2d(4);  // 2x2
  EXPECT_TRUE(t.link_between(0, 1).has_value());
  EXPECT_TRUE(t.link_between(1, 0).has_value());
  EXPECT_FALSE(t.link_between(0, 3).has_value());  // diagonal
  EXPECT_FALSE(t.link_between(0, 0).has_value());
}

TEST(Topology, RejectsSelfLoop) {
  Topology t(4);
  EXPECT_THROW(t.add_link(1, 1), std::invalid_argument);
}

TEST(Topology, RejectsDuplicateLink) {
  Topology t(4);
  t.add_link(0, 1);
  EXPECT_THROW(t.add_link(0, 1), std::invalid_argument);
  EXPECT_THROW(t.add_link(1, 0), std::invalid_argument);
}

TEST(Topology, RejectsOutOfRange) {
  Topology t(4);
  EXPECT_THROW(t.add_link(0, 4), std::out_of_range);
}

TEST(Topology, RejectsZeroBandwidth) {
  Topology t(4);
  EXPECT_THROW(t.add_link(0, 1, LinkProps{12, 0}), std::invalid_argument);
}

TEST(Topology, DisconnectedDetected) {
  Topology t(4);
  t.add_link(0, 1);
  t.add_link(2, 3);
  EXPECT_FALSE(t.connected());
  EXPECT_THROW((void)t.diameter(), std::logic_error);
}

TEST(Topology, SaveParseRoundTrip) {
  LinkProps intra{kTicksPerCycle / 2, 64};
  LinkProps inter{4 * kTicksPerCycle, 256};
  const auto original = Topology::clustered_mesh2d(16, 4, intra, inter);
  std::stringstream ss;
  original.save(ss);
  const auto parsed = Topology::parse(ss);
  ASSERT_EQ(parsed.num_cores(), original.num_cores());
  ASSERT_EQ(parsed.num_links(), original.num_links());
  for (LinkId id = 0; id < original.num_links(); ++id) {
    EXPECT_EQ(parsed.link(id).a, original.link(id).a);
    EXPECT_EQ(parsed.link(id).b, original.link(id).b);
    EXPECT_EQ(parsed.link(id).props.latency,
              original.link(id).props.latency);
    EXPECT_EQ(parsed.link(id).props.bandwidth_bytes_per_cycle,
              original.link(id).props.bandwidth_bytes_per_cycle);
  }
}

TEST(Topology, ParseHandlesCommentsAndDefaults) {
  std::stringstream ss(
      "# a comment\n"
      "cores 3\n"
      "\n"
      "link 0 1   # default props\n"
      "link 1 2 24 256\n");
  const auto t = Topology::parse(ss);
  EXPECT_EQ(t.num_cores(), 3u);
  EXPECT_EQ(t.num_links(), 2u);
  EXPECT_EQ(t.link(0).props.latency, kTicksPerCycle);
  EXPECT_EQ(t.link(1).props.latency, 24u);
  EXPECT_EQ(t.link(1).props.bandwidth_bytes_per_cycle, 256u);
}

TEST(Topology, ParseErrors) {
  std::stringstream no_cores("link 0 1\n");
  EXPECT_THROW((void)Topology::parse(no_cores), std::runtime_error);
  std::stringstream bad_keyword("cores 2\nfrobnicate 0 1\n");
  EXPECT_THROW((void)Topology::parse(bad_keyword), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW((void)Topology::parse(empty), std::runtime_error);
  std::stringstream zero("cores 0\n");
  EXPECT_THROW((void)Topology::parse(zero), std::runtime_error);
}

TEST(Topology, DistancesFromBfs) {
  const auto t = Topology::mesh2d(16);  // 4x4, node ids row-major
  const auto d = t.distances_from(0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[4], 1u);
  EXPECT_EQ(d[5], 2u);
  EXPECT_EQ(d[15], 6u);
}

}  // namespace
}  // namespace simany::net
