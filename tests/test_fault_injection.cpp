// Deterministic fault injection (src/fault).
//
// Covers the full contract of the fault subsystem:
//   * determinism — same (seed, fault plan) gives bit-identical results
//     on the sequential and parallel hosts (1-shard parallel ==
//     sequential; fixed shard count is thread-count invariant), across
//     all four standard topologies, with fault counters in the
//     fingerprint;
//   * masking — drops are absorbed by retry/backoff and runs complete;
//   * unmaskable faults — a 100%-drop plan exhausts the retry budget
//     and surfaces a clean SimError with structured fault context,
//     never a hang;
//   * graceful degradation — permanently dead cores do no task work,
//     deny every probe, and the remaining cores still finish the dwarf;
//   * the deadlock analyzer distinguishes an all-dead partition from a
//     protocol deadlock;
//   * all simcheck invariants hold while faults fire;
//   * the injector itself draws reproducibly and per-stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "check/deadlock.h"
#include "check/invariant_checker.h"
#include "config/arch_config.h"
#include "core/engine.h"
#include "core/sim_error.h"
#include "dwarfs/dwarfs.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/topology.h"

namespace simany {
namespace {

constexpr double kTiny = 0.05;

/// A mixed plan with every fault class armed at rates a small dwarf
/// can absorb. Drops stay maskable: retry_limit 8 at p=0.05 makes an
/// exhausted budget astronomically unlikely.
fault::FaultPlan mixed_plan(std::uint64_t seed) {
  fault::FaultPlan p;
  p.seed = seed;
  p.msg_delay_prob = 0.10;
  p.msg_dup_prob = 0.05;
  p.msg_drop_prob = 0.05;
  p.stall_prob = 0.10;
  p.spawn_fail_prob = 0.05;
  p.mem_spike_prob = 0.05;
  return p;
}

/// Reproducible results, fault telemetry included: any divergence in
/// fault draws shows up directly in the counters, and any knock-on
/// timing divergence in per-core busy ticks.
struct Fingerprint {
  Tick completion;
  std::uint64_t spawned, migrated, messages, stalls;
  std::uint64_t faults, delayed, duplicated, dropped, retries;
  std::uint64_t core_stalls, spawn_denials, mem_spikes;
  std::vector<Tick> core_busy;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint fingerprint(const SimStats& s) {
  return Fingerprint{s.completion_ticks,    s.tasks_spawned,
                     s.tasks_migrated,      s.messages,
                     s.sync_stalls,         s.faults_injected,
                     s.fault_msgs_delayed,  s.fault_msgs_duplicated,
                     s.fault_msgs_dropped,  s.fault_msg_retries,
                     s.fault_core_stalls,   s.fault_spawn_denials,
                     s.fault_mem_spikes,    s.core_busy_ticks};
}

ArchConfig topo_config(const std::string& topo) {
  if (topo == "shared_mesh") return ArchConfig::shared_mesh(16);
  if (topo == "distributed_mesh") return ArchConfig::distributed_mesh(16);
  if (topo == "clustered") {
    return ArchConfig::clustered(ArchConfig::shared_mesh(16), 4);
  }
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  cfg.topology = net::Topology::ring(8);
  return cfg;  // "ring"
}

Fingerprint run_once(const std::string& topo, const char* dwarf,
                     const fault::FaultPlan& plan, HostMode mode,
                     std::uint32_t threads, std::uint32_t shards) {
  ArchConfig cfg = topo_config(topo);
  cfg.fault = plan;
  cfg.host.mode = mode;
  cfg.host.threads = threads;
  cfg.host.shards = shards;
  Engine sim(cfg);
  return fingerprint(
      sim.run(dwarfs::dwarf_by_name(dwarf).make_root(17, kTiny)));
}

// ---------------------------------------------------------------------
// Chaos suite: cross-host bit-identity under faults, all topologies.
// ---------------------------------------------------------------------

class FaultChaos
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(FaultChaos, OneShardParallelMatchesSequentialUnderFaults) {
  const auto [topo, dwarf] = GetParam();
  const fault::FaultPlan plan = mixed_plan(23);
  const Fingerprint seq =
      run_once(topo, dwarf, plan, HostMode::kSequential, 1, 1);
  EXPECT_GT(seq.faults, 0u) << topo << "/" << dwarf
                            << ": plan never fired; test is vacuous";
  for (std::uint32_t threads : {1u, 2u, 4u}) {
    const Fingerprint par =
        run_once(topo, dwarf, plan, HostMode::kParallel, threads, 1);
    EXPECT_TRUE(seq == par)
        << topo << "/" << dwarf << " with " << threads << " threads";
  }
}

TEST_P(FaultChaos, FixedShardCountIsThreadInvariantUnderFaults) {
  const auto [topo, dwarf] = GetParam();
  const fault::FaultPlan plan = mixed_plan(23);
  const Fingerprint base =
      run_once(topo, dwarf, plan, HostMode::kParallel, 1, 4);
  for (std::uint32_t threads : {2u, 4u}) {
    const Fingerprint par =
        run_once(topo, dwarf, plan, HostMode::kParallel, threads, 4);
    EXPECT_TRUE(base == par)
        << topo << "/" << dwarf << " with " << threads << " threads";
  }
}

TEST_P(FaultChaos, RunToRunReproducible) {
  const auto [topo, dwarf] = GetParam();
  const fault::FaultPlan plan = mixed_plan(29);
  const Fingerprint a =
      run_once(topo, dwarf, plan, HostMode::kSequential, 1, 1);
  const Fingerprint b =
      run_once(topo, dwarf, plan, HostMode::kSequential, 1, 1);
  EXPECT_TRUE(a == b) << topo << "/" << dwarf;
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, FaultChaos,
    ::testing::Combine(::testing::Values("shared_mesh", "distributed_mesh",
                                         "ring", "clustered"),
                       ::testing::Values("spmxv", "quicksort")),
    [](const ::testing::TestParamInfo<std::tuple<const char*, const char*>>&
           info) {
      return std::string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

// ---------------------------------------------------------------------
// Masking and unmaskable failures.
// ---------------------------------------------------------------------

TEST(FaultMasking, HeavyDropPlanStillCompletes) {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.msg_drop_prob = 0.25;  // every 4th attempt lost, masked by retry
  ArchConfig cfg = ArchConfig::distributed_mesh(16);
  cfg.fault = plan;
  Engine sim(cfg);
  const SimStats st =
      sim.run(dwarfs::dwarf_by_name("spmxv").make_root(17, kTiny));
  EXPECT_GT(st.completion_ticks, 0u);
  EXPECT_GT(st.fault_msgs_dropped, 0u);
  EXPECT_GE(st.fault_msg_retries, st.fault_msgs_dropped);
}

TEST(FaultMasking, DifferentSeedsGiveDifferentOutcomes) {
  const Fingerprint a = run_once("distributed_mesh", "spmxv", mixed_plan(1),
                                 HostMode::kSequential, 1, 1);
  const Fingerprint b = run_once("distributed_mesh", "spmxv", mixed_plan(2),
                                 HostMode::kSequential, 1, 1);
  EXPECT_FALSE(a == b) << "independent fault seeds produced identical runs";
}

TEST(FaultMasking, UnmaskablePlanRaisesSimErrorWithContext) {
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.msg_drop_prob = 1.0;  // every attempt lost: retries cannot mask
  plan.retry_limit = 3;
  ArchConfig cfg = ArchConfig::distributed_mesh(16);
  cfg.fault = plan;
  Engine sim(cfg);
  try {
    (void)sim.run(dwarfs::dwarf_by_name("spmxv").make_root(17, kTiny));
    FAIL() << "100% drop plan completed instead of raising SimError";
  } catch (const SimError& e) {
    const SimError::Context& ctx = e.context();
    EXPECT_EQ(ctx.cause, "msg-retry-exhausted");
    EXPECT_EQ(ctx.detail, plan.retry_limit + 1u);  // attempts made
    EXPECT_EQ(ctx.fault_seed, plan.seed);
    EXPECT_NE(ctx.core, ~0u);
    EXPECT_NE(ctx.peer, ~0u);
    EXPECT_NE(std::string(e.what()).find("retry"), std::string::npos);
  }
}

TEST(FaultMasking, UnmaskableFailureIsIdenticalOnParallelHost) {
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.msg_drop_prob = 1.0;
  plan.retry_limit = 3;
  ArchConfig cfg = ArchConfig::distributed_mesh(16);
  cfg.fault = plan;
  cfg.host.mode = HostMode::kParallel;
  cfg.host.threads = 2;
  cfg.host.shards = 1;
  Engine sim(cfg);
  EXPECT_THROW(
      (void)sim.run(dwarfs::dwarf_by_name("spmxv").make_root(17, kTiny)),
      SimError);
}

// ---------------------------------------------------------------------
// Dead cores: graceful degradation & diagnosis.
// ---------------------------------------------------------------------

TEST(FaultDeadCores, DwarfCompletesWithDeadCores) {
  fault::FaultPlan plan;
  plan.seed = 41;
  plan.dead_cores = 3;
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.fault = plan;
  Engine sim(cfg);
  const SimStats st =
      sim.run(dwarfs::dwarf_by_name("quicksort").make_root(17, kTiny));
  EXPECT_GT(st.completion_ticks, 0u);
  EXPECT_EQ(st.fault_dead_cores, 3u);

  // Work was remapped: the dead cores executed nothing.
  const auto dead = plan.dead_set(16);
  ASSERT_EQ(dead.size(), 3u);
  for (const net::CoreId c : dead) {
    EXPECT_EQ(st.core_busy_ticks[c], 0u) << "dead core " << c << " ran work";
  }
}

TEST(FaultDeadCores, ExplicitDeadListIsHonored) {
  fault::FaultPlan plan;
  plan.seed = 1;
  plan.dead_core_list = {5, 10};
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.fault = plan;
  Engine sim(cfg);
  const SimStats st =
      sim.run(dwarfs::dwarf_by_name("spmxv").make_root(17, kTiny));
  EXPECT_EQ(st.fault_dead_cores, 2u);
  EXPECT_EQ(st.core_busy_ticks[5], 0u);
  EXPECT_EQ(st.core_busy_ticks[10], 0u);
}

TEST(FaultDeadCores, DeadSetIsDeterministicAndExcludesCoreZero) {
  fault::FaultPlan plan;
  plan.seed = 77;
  plan.dead_cores = 6;
  const auto a = plan.dead_set(16);
  const auto b = plan.dead_set(16);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 6u);
  for (const net::CoreId c : a) {
    EXPECT_NE(c, 0u) << "core 0 (the root's home) must never die";
    EXPECT_LT(c, 16u);
  }
}

TEST(FaultDeadCores, AnalyzerDistinguishesAllDeadPartition) {
  const net::Topology topo = net::Topology::ring(4);

  EngineInspect state;
  state.drift_ticks = 100;
  state.live_tasks = 1;
  state.cores.resize(4);
  for (std::uint32_t i = 0; i < 4; ++i) state.cores[i].id = i;
  state.cores[2].dead = true;
  state.cores[2].queue_len = 1;  // the only pending work sits on a corpse

  const check::DeadlockReport dead_rep =
      check::analyze_deadlock(state, topo);
  EXPECT_TRUE(dead_rep.all_dead_partition);
  EXPECT_NE(dead_rep.summary.find("all-dead partition"), std::string::npos);
  EXPECT_NE(dead_rep.summary.find("not a protocol deadlock"),
            std::string::npos);

  // Control: the same stall with the work on a *live* core is a real
  // protocol deadlock, not an injected failure mode.
  state.cores[2].dead = false;
  const check::DeadlockReport live_rep =
      check::analyze_deadlock(state, topo);
  EXPECT_FALSE(live_rep.all_dead_partition);
  EXPECT_NE(live_rep.summary.find("simulated deadlock"), std::string::npos);
}

// ---------------------------------------------------------------------
// Invariants hold while faults fire.
// ---------------------------------------------------------------------

TEST(FaultInvariants, AllSimcheckInvariantsHoldUnderMixedFaults) {
  ArchConfig cfg = ArchConfig::distributed_mesh(16);
  cfg.fault = mixed_plan(13);
  cfg.fault.dead_cores = 2;
  Engine sim(cfg);
  check::InvariantChecker checker;
  checker.attach(sim);
  const SimStats st =
      sim.run(dwarfs::dwarf_by_name("quicksort").make_root(17, kTiny));
  EXPECT_TRUE(checker.violations().empty());
  EXPECT_GT(checker.checks_performed(), 0u);
  EXPECT_GT(checker.faults_observed(), 0u)
      << "checker never saw a fault: invariants were not tested under load";
  EXPECT_EQ(st.faults_injected, checker.faults_observed());
}

TEST(FaultInvariants, CheckerHoldsUnderTightDriftWithStalls) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.drift_t_cycles = 5;  // maximum spatial-sync pressure
  cfg.fault.seed = 3;
  cfg.fault.stall_prob = 0.3;
  cfg.fault.stall_cycles = 200;
  Engine sim(cfg);
  check::InvariantChecker checker;
  checker.attach(sim);
  (void)sim.run(dwarfs::dwarf_by_name("spmxv").make_root(17, kTiny));
  EXPECT_TRUE(checker.violations().empty());
}

// ---------------------------------------------------------------------
// Plan validation & injector unit behavior.
// ---------------------------------------------------------------------

TEST(FaultPlanValidate, RejectsMalformedPlans) {
  fault::FaultPlan p;
  p.msg_drop_prob = 1.5;
  EXPECT_THROW(p.validate(16), std::invalid_argument);

  p = {};
  p.msg_delay_prob = 0.5;
  p.msg_delay_cycles = 0;  // armed fault with no magnitude
  EXPECT_THROW(p.validate(16), std::invalid_argument);

  p = {};
  p.dead_core_list = {0};  // the root's core must stay alive
  EXPECT_THROW(p.validate(16), std::invalid_argument);

  p = {};
  p.dead_cores = 16;  // nobody left to run anything
  EXPECT_THROW(p.validate(16), std::invalid_argument);

  p = {};
  p.dead_core_list = {99};
  EXPECT_THROW(p.validate(16), std::invalid_argument);

  EXPECT_NO_THROW(fault::FaultPlan{}.validate(16));
  EXPECT_NO_THROW(mixed_plan(1).validate(16));
}

TEST(FaultInjectorUnit, MessageDrawsAreReproducible) {
  const net::Topology topo = net::Topology::mesh2d(16);
  const net::Network net(topo);
  const fault::FaultPlan plan = mixed_plan(55);

  auto sequence = [&] {
    fault::FaultInjector inj(plan, 16);
    inj.bind_shards(1);
    net::Network::Lane lane = net.make_lane();
    std::vector<Tick> arrivals;
    for (int i = 0; i < 200; ++i) {
      const fault::MsgFaults f = inj.on_message(
          net, lane, 0, static_cast<net::CoreId>(i % 16),
          static_cast<net::CoreId>((i * 7 + 1) % 16), 64,
          static_cast<Tick>(i * 100));
      arrivals.push_back(f.arrival);
    }
    return arrivals;
  };
  EXPECT_EQ(sequence(), sequence());
}

TEST(FaultInjectorUnit, PerCoreStreamsAreIndependent) {
  fault::FaultPlan plan;
  plan.seed = 8;
  plan.stall_prob = 0.5;
  plan.stall_cycles = 100;
  fault::FaultInjector a(plan, 16);
  fault::FaultInjector b(plan, 16);
  // Interleaving draws across cores must not perturb either stream.
  std::vector<Tick> seq_a;
  std::vector<Tick> seq_b;
  for (int i = 0; i < 50; ++i) {
    seq_a.push_back(a.draw_task_stall(3));
    (void)a.draw_task_stall(7);  // traffic on another core's stream
  }
  for (int i = 0; i < 50; ++i) {
    seq_b.push_back(b.draw_task_stall(3));
  }
  EXPECT_EQ(seq_a, seq_b);
}

TEST(FaultInjectorUnit, LocalSendsAreNeverFaulted) {
  const net::Topology topo = net::Topology::mesh2d(16);
  const net::Network net(topo);
  fault::FaultPlan plan;
  plan.seed = 2;
  plan.msg_drop_prob = 1.0;  // would kill any networked message
  fault::FaultInjector inj(plan, 16);
  inj.bind_shards(1);
  net::Network::Lane lane = net.make_lane();
  const fault::MsgFaults f = inj.on_message(net, lane, 0, 4, 4, 64, 1000);
  EXPECT_EQ(f.retries, 0u);
  EXPECT_EQ(f.duplicates, 0u);
  EXPECT_EQ(f.delay, 0u);
}

}  // namespace
}  // namespace simany
