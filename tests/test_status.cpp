// Live run-status heartbeat (src/obs/status): zero-perturbation
// contract, file schema, host coverage and the failure-path heartbeat.
//
// The headline guarantee: attaching a StatusReporter changes nothing
// about the simulation — stats and event fingerprints are identical
// with the heartbeat on or off, on every host backend — while the
// status file always ends on a terminal "finished"/"failed" sample.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/sim_error.h"
#include "dwarfs/dwarfs.h"
#include "obs/event.h"
#include "obs/status.h"
#include "obs/telemetry.h"

namespace simany {
namespace {

TaskFn dwarf_root(const std::string& name) {
  return dwarfs::dwarf_by_name(name).make_root(1, 0.05);
}

ArchConfig parallel(ArchConfig cfg, std::uint32_t shards,
                    std::uint32_t threads) {
  cfg.host.mode = HostMode::kParallel;
  cfg.host.shards = shards;
  cfg.host.threads = threads;
  return cfg;
}

std::string status_path(const char* name) {
  return testing::TempDir() + "simany_status_" + name + ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct RunOutcome {
  SimStats stats;
  std::uint64_t fp_all = 0;
};

RunOutcome run_once(const ArchConfig& cfg, const TaskFn& root,
                    obs::StatusReporter* status,
                    ExecutionMode mode = ExecutionMode::kVirtualTime) {
  obs::Telemetry t;
  Engine sim(cfg, mode);
  sim.set_telemetry(&t);
  if (status != nullptr) sim.set_status(status);
  RunOutcome r;
  r.stats = sim.run(root);
  r.fp_all = t.fingerprint(obs::EventClass::kAll);
  return r;
}

TEST(StatusReporter, HeartbeatOnOrOffIsByteIdenticalSimulation) {
  const ArchConfig cfg = ArchConfig::shared_mesh(16);
  const TaskFn root = dwarf_root("spmxv");
  const RunOutcome off = run_once(cfg, root, nullptr);
  const std::string path = status_path("onoff");
  obs::StatusReporter rep(path, 0);
  const RunOutcome on = run_once(cfg, root, &rep);
  EXPECT_EQ(off.fp_all, on.fp_all);
  EXPECT_EQ(off.stats.completion_ticks, on.stats.completion_ticks);
  EXPECT_EQ(off.stats.messages, on.stats.messages);
  EXPECT_EQ(off.stats.sync_stalls, on.stats.sync_stalls);
  EXPECT_GE(rep.writes(), 1u);
  std::remove(path.c_str());
}

TEST(StatusReporter, FinalHeartbeatReportsFinishedSchema) {
  const std::string path = status_path("schema");
  obs::StatusReporter rep(path, 0);
  const RunOutcome r =
      run_once(ArchConfig::shared_mesh(16), dwarf_root("octree"), &rep);
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"schema\":\"simany-status-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"state\":\"finished\""), std::string::npos);
  EXPECT_NE(body.find("\"rounds\":"), std::string::npos);
  EXPECT_NE(body.find("\"drift_gap_cycles\":"), std::string::npos);
  EXPECT_NE(body.find("\"imbalance\":"), std::string::npos);
  EXPECT_NE(body.find("\"guard\":"), std::string::npos);
  EXPECT_NE(body.find("\"eta_ms\":null"), std::string::npos);
  // No torn tmp file left behind: the rename consumed it.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  EXPECT_GT(r.stats.completion_ticks, 0u);
  std::remove(path.c_str());
}

TEST(StatusReporter, ParallelHostWritesShardRowsAndStaysDeterministic) {
  const ArchConfig cfg = parallel(ArchConfig::shared_mesh(16), 4, 2);
  const TaskFn root = dwarf_root("spmxv");
  const RunOutcome off = run_once(cfg, root, nullptr);
  const std::string path = status_path("par4");
  obs::StatusReporter rep(path, 0);
  const RunOutcome on = run_once(cfg, root, &rep);
  EXPECT_EQ(off.fp_all, on.fp_all);
  EXPECT_EQ(off.stats.completion_ticks, on.stats.completion_ticks);
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"shards\":[{\"id\":0"), std::string::npos);
  EXPECT_NE(body.find("\"id\":3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StatusReporter, CycleLevelLoopEmitsHeartbeats) {
  const std::string path = status_path("cl");
  obs::StatusReporter rep(path, 0);
  const RunOutcome r =
      run_once(ArchConfig::shared_mesh(16), dwarf_root("spmxv"), &rep,
               ExecutionMode::kCycleLevel);
  EXPECT_GT(r.stats.completion_ticks, 0u);
  EXPECT_GE(rep.writes(), 2u);  // per-quantum cadence plus the final one
  EXPECT_NE(slurp(path).find("\"state\":\"finished\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(StatusReporter, GuardAbortLeavesFailedHeartbeat) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.guard.max_vtime_cycles = 50;  // trips long before completion
  cfg.guard.poll_quanta = 8;        // poll often enough to notice
  const std::string path = status_path("failed");
  obs::StatusReporter rep(path, 0);
  Engine sim(cfg);
  sim.set_status(&rep);
  EXPECT_THROW((void)sim.run(dwarf_root("spmxv")), SimError);
  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"state\":\"failed\""), std::string::npos);
  EXPECT_NE(body.find("\"budget_fraction\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StatusReporter, ThrottleSuppressesIntermediateWrites) {
  // A huge interval admits only the unconditional terminal heartbeat
  // (plus the first write, which due() always allows).
  const std::string path = status_path("throttle");
  obs::StatusReporter rep(path, 3'600'000);
  const RunOutcome r =
      run_once(ArchConfig::shared_mesh(16), dwarf_root("spmxv"), &rep,
               ExecutionMode::kCycleLevel);
  EXPECT_GT(r.stats.completion_ticks, 0u);
  EXPECT_LE(rep.writes(), 2u);
  EXPECT_NE(slurp(path).find("\"state\":\"finished\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simany
