// Shard-aware telemetry (src/obs): determinism contract, metrics, and
// exporters.
//
// The headline guarantees under test:
//   1. Attaching a Telemetry never perturbs the simulation (identical
//      SimStats with and without it) and does not pin the run to the
//      sequential host.
//   2. The merged event stream is bit-identical between the sequential
//      backend and a one-shard parallel run, for the full event set,
//      and thread-count-invariant at any fixed shard count.
//   3. For workloads whose simulated timeline is shard-invariant (no
//      placement decisions read frozen cross-shard proxies), the
//      architectural event stream is bit-identical across sequential
//      and 1/2/4-shard parallel runs — on more than one topology.
//   4. Fault events appear on the exported Perfetto timeline, and the
//      host profiler produces wall-clock tracks under --profile-host.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"
#include "net/topology.h"
#include "obs/event.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace simany {
namespace {

using obs::Event;
using obs::EventClass;
using obs::EventKind;

// ---------------------------------------------------------------------
// Canonical order and fingerprint: pure functions of the multiset
// ---------------------------------------------------------------------

std::vector<Event> sample_events() {
  return {
      Event{.vtime = 24, .core = 1, .kind = EventKind::kTaskStart},
      Event{.vtime = 12, .core = 2, .kind = EventKind::kTaskStart},
      Event{.vtime = 24, .core = 1, .kind = EventKind::kTaskEnd},
      Event{.vtime = 24, .a = 36, .core = 0, .dst = 1,
            .kind = EventKind::kMsgPost},
      Event{.vtime = 24, .core = 1, .kind = EventKind::kStall},
      Event{.vtime = 12, .a = 7, .core = 2, .kind = EventKind::kLockAcquire},
  };
}

TEST(CanonicalOrder, SortIsUniqueForAnyInputPermutation) {
  std::vector<Event> base = sample_events();
  std::sort(base.begin(), base.end(), obs::canonical_less);
  std::vector<Event> shuffled = sample_events();
  std::mt19937 gen(42);
  for (int i = 0; i < 20; ++i) {
    std::shuffle(shuffled.begin(), shuffled.end(), gen);
    std::vector<Event> sorted = shuffled;
    std::sort(sorted.begin(), sorted.end(), obs::canonical_less);
    for (std::size_t j = 0; j < base.size(); ++j) {
      EXPECT_EQ(base[j].key(), sorted[j].key()) << "position " << j;
    }
  }
}

TEST(CanonicalOrder, EndSortsBeforeStartAtSameInstant) {
  const Event end{.vtime = 24, .core = 1, .kind = EventKind::kTaskEnd};
  const Event start{.vtime = 24, .core = 1, .kind = EventKind::kTaskStart};
  EXPECT_TRUE(obs::canonical_less(end, start));
  EXPECT_FALSE(obs::canonical_less(start, end));
}

TEST(CanonicalOrder, FingerprintSeparatesClasses) {
  std::vector<Event> ev = sample_events();
  std::sort(ev.begin(), ev.end(), obs::canonical_less);
  std::uint64_t all = obs::kFingerprintSeed;
  std::uint64_t arch = obs::kFingerprintSeed;
  for (const Event& e : ev) {
    all = obs::hash_event(all, e);
    if (obs::in_class(e.kind, EventClass::kArchitectural)) {
      arch = obs::hash_event(arch, e);
    }
  }
  EXPECT_NE(all, arch);  // the stream contains one sync event
  EXPECT_TRUE(obs::is_sync_event(EventKind::kStall));
  EXPECT_TRUE(obs::is_sync_event(EventKind::kWake));
  EXPECT_FALSE(obs::is_sync_event(EventKind::kMsgPost));
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("a") += 3;
  reg.counter("a") += 2;
  reg.gauge("g") = 1.5;
  obs::Histogram& h = reg.histogram("h", {10.0, 100.0});
  h.record(5.0);
  h.record(50.0);
  h.record(500.0);
  EXPECT_EQ(reg.counter("a"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), 1.5);
  EXPECT_EQ(h.total, 3u);
  EXPECT_EQ(h.counts[0], 1u);  // < 10
  EXPECT_EQ(h.counts[1], 1u);  // < 100
  EXPECT_EQ(h.counts[2], 1u);  // overflow bucket
  EXPECT_THROW(reg.histogram("bad", {5.0, 5.0}), std::invalid_argument);
}

TEST(MetricsRegistry, SeriesFingerprintIsAppendOrderInvariant) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.sample("s", 10, 0, 1.0);
  a.sample("s", 20, 1, 2.0);
  b.sample("s", 20, 1, 2.0);
  b.sample("s", 10, 0, 1.0);
  a.sort_series();
  b.sort_series();
  EXPECT_EQ(a.series_fingerprint(), b.series_fingerprint());
}

TEST(MetricsRegistry, JsonAndCsvExportSmoke) {
  obs::MetricsRegistry reg;
  reg.counter("msgs") = 7;
  reg.gauge("par") = 3.25;
  reg.histogram("lat", {1.0, 10.0}).record(4.0);
  reg.sample("occ", 100, 2, 1.0);
  reg.sort_series();
  std::ostringstream js;
  reg.write_json(js);
  EXPECT_NE(js.str().find("\"msgs\":7"), std::string::npos);
  EXPECT_NE(js.str().find("\"occ\""), std::string::npos);
  std::ostringstream cs;
  reg.write_csv(cs);
  EXPECT_NE(cs.str().find("series,t_cycles,core,value"), std::string::npos);
  EXPECT_NE(cs.str().find("occ,100,2,1"), std::string::npos);
}

// ---------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------

struct RunResult {
  SimStats stats;
  std::uint64_t fp_all = 0;
  std::uint64_t fp_arch = 0;
  std::uint64_t fp_metrics = 0;
  std::size_t events = 0;
};

ArchConfig parallel(ArchConfig cfg, std::uint32_t shards,
                    std::uint32_t threads) {
  cfg.host.mode = HostMode::kParallel;
  cfg.host.shards = shards;
  cfg.host.threads = threads;
  return cfg;
}

RunResult run_with_telemetry(const ArchConfig& cfg, const TaskFn& root,
                             std::uint64_t interval = 0) {
  obs::TelemetryOptions opt;
  opt.metrics_interval_cycles = interval;
  obs::Telemetry t(opt);
  Engine sim(cfg);
  sim.set_telemetry(&t);
  RunResult r;
  r.stats = sim.run(root);
  r.fp_all = t.fingerprint(EventClass::kAll);
  r.fp_arch = t.fingerprint(EventClass::kArchitectural);
  r.fp_metrics = t.metrics().series_fingerprint();
  r.events = t.events().size();
  return r;
}

TaskFn dwarf_root(const std::string& name) {
  return dwarfs::dwarf_by_name(name).make_root(1, 0.05);
}

TEST(TelemetryEngine, AttachingDoesNotPerturbTheSimulation) {
  const ArchConfig cfg = ArchConfig::shared_mesh(16);
  const TaskFn root = dwarf_root("spmxv");
  Engine bare(cfg);
  const SimStats plain = bare.run(root);
  const RunResult instrumented = run_with_telemetry(cfg, root, 50);
  EXPECT_EQ(plain.completion_ticks, instrumented.stats.completion_ticks);
  EXPECT_EQ(plain.messages, instrumented.stats.messages);
  EXPECT_EQ(plain.sync_stalls, instrumented.stats.sync_stalls);
  EXPECT_EQ(plain.core_busy_ticks, instrumented.stats.core_busy_ticks);
  EXPECT_GT(instrumented.events, 0u);
}

TEST(TelemetryEngine, SequentialEqualsOneShardParallelFullStream) {
  for (const char* dwarf : {"spmxv", "quicksort"}) {
    for (const bool distributed : {false, true}) {
      const ArchConfig cfg = distributed ? ArchConfig::distributed_mesh(16)
                                         : ArchConfig::shared_mesh(16);
      const TaskFn root = dwarf_root(dwarf);
      const RunResult seq = run_with_telemetry(cfg, root, 100);
      const RunResult par = run_with_telemetry(parallel(cfg, 1, 4), root,
                                               100);
      EXPECT_EQ(seq.fp_all, par.fp_all) << dwarf << " distributed="
                                        << distributed;
      EXPECT_EQ(seq.events, par.events);
      EXPECT_EQ(seq.fp_metrics, par.fp_metrics);
      EXPECT_EQ(seq.stats.completion_ticks, par.stats.completion_ticks);
    }
  }
}

TEST(TelemetryEngine, FixedShardCountIsThreadInvariant) {
  const ArchConfig cfg = ArchConfig::shared_mesh(16);
  const TaskFn root = dwarf_root("spmxv");
  const RunResult t1 = run_with_telemetry(parallel(cfg, 4, 1), root, 100);
  const RunResult t2 = run_with_telemetry(parallel(cfg, 4, 2), root, 100);
  const RunResult t4 = run_with_telemetry(parallel(cfg, 4, 4), root, 100);
  EXPECT_EQ(t1.fp_all, t2.fp_all);
  EXPECT_EQ(t1.fp_all, t4.fp_all);
  EXPECT_EQ(t1.fp_metrics, t2.fp_metrics);
  EXPECT_EQ(t1.fp_metrics, t4.fp_metrics);
  EXPECT_EQ(t1.events, t4.events);
}

// A workload whose simulated timeline is shard-count-invariant: one
// root task on core 0 performs strictly serialized remote cell reads
// (DATA_REQUEST -> DATA_RESPONSE -> CELL_RELEASE). No probes, spawns,
// migrations or contended objects, so no decision ever consults a
// frozen cross-shard proxy, and every handler core is idle when a
// request arrives (it processes at the network arrival time). The
// *architectural* trace must therefore be bit-identical at any shard
// count; stall/wake placement is host cadence and stays out of scope.
TaskFn traffic_root() {
  return [](TaskCtx& ctx) {
    const std::uint32_t n = ctx.num_cores();
    std::vector<CellId> cells;
    for (std::uint32_t h = 1; h < n; ++h) {
      cells.push_back(ctx.make_cell_at(256, h));
    }
    for (int round = 0; round < 3; ++round) {
      for (const CellId cell : cells) {
        ctx.compute(20);
        CellGuard guard(ctx, cell, AccessMode::kRead);
        ctx.compute(5);
      }
    }
  };
}

TEST(TelemetryEngine, ArchitecturalStreamBitIdenticalAcrossShardCounts) {
  ArchConfig mesh = ArchConfig::distributed_mesh(16);
  ArchConfig ring = ArchConfig::distributed_mesh(16);
  ring.topology = net::Topology::ring(16);
  int checked = 0;
  for (const ArchConfig& cfg : {mesh, ring}) {
    const TaskFn root = traffic_root();
    const RunResult seq = run_with_telemetry(cfg, root);
    ASSERT_GT(seq.events, 0u);
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
      const RunResult par =
          run_with_telemetry(parallel(cfg, shards, 2), root);
      EXPECT_EQ(seq.fp_arch, par.fp_arch)
          << "shards=" << shards << " topology=" << checked;
      EXPECT_EQ(seq.stats.completion_ticks, par.stats.completion_ticks)
          << "shards=" << shards << " topology=" << checked;
    }
    ++checked;
  }
  EXPECT_EQ(checked, 2);
}

TEST(TelemetryEngine, DriftHighWaterMarkMatchesSeqVsOneShard) {
  const ArchConfig cfg = ArchConfig::shared_mesh(16);
  const TaskFn root = dwarf_root("spmxv");
  Engine a(cfg);
  const SimStats seq = a.run(root);
  Engine b(parallel(cfg, 1, 2));
  const SimStats par = b.run(root);
  EXPECT_GT(seq.drift_max_ticks, 0u);
  EXPECT_EQ(seq.drift_max_ticks, par.drift_max_ticks);
  // The gap is bounded by the drift window plus one compute block's
  // overshoot; completion is a safe, if generous, ceiling.
  EXPECT_LT(seq.drift_max_ticks, seq.completion_ticks);
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

TEST(TelemetryExport, FaultEventsAppearOnTheJsonTimeline) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.fault.seed = 7;
  cfg.fault.stall_prob = 0.2;
  cfg.fault.stall_cycles = 40;
  obs::Telemetry t;
  Engine sim(cfg);
  sim.set_telemetry(&t);
  const SimStats st = sim.run(dwarf_root("spmxv"));
  ASSERT_GT(st.fault_core_stalls, 0u);
  std::size_t fault_events = 0;
  for (const Event& e : t.events()) {
    if (e.kind == EventKind::kFault) ++fault_events;
  }
  EXPECT_EQ(fault_events, st.faults_injected);
  std::ostringstream os;
  obs::write_chrome_trace(os, t);
  EXPECT_NE(os.str().find("\"fault:core-stall\""), std::string::npos);
  std::ostringstream cs;
  obs::write_events_csv(cs, t);
  EXPECT_NE(cs.str().find("fault,core-stall"), std::string::npos);
}

TEST(TelemetryExport, ChromeTraceHasCoreTracksAndTaskSlices) {
  obs::Telemetry t;
  Engine sim(ArchConfig::shared_mesh(16));
  sim.set_telemetry(&t);
  (void)sim.run(dwarf_root("quicksort"));
  std::ostringstream os;
  obs::write_chrome_trace(os, t);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("simulated cores"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"task\""), std::string::npos);
  // No profiler attached: no host-side wall-clock process.
  EXPECT_EQ(json.find("host rounds"), std::string::npos);
}

TEST(TelemetryExport, HostProfilerProducesRoundPhaseTracks) {
  obs::TelemetryOptions opt;
  opt.profile_host = true;
  obs::Telemetry t(opt);
  Engine sim(parallel(ArchConfig::shared_mesh(16), 4, 2));
  sim.set_telemetry(&t);
  (void)sim.run(dwarf_root("spmxv"));
  ASSERT_NE(t.profiler(), nullptr);
  const obs::HostProfiler& prof = t.host_profiler();
  EXPECT_EQ(prof.num_shards(), 4u);
  EXPECT_FALSE(prof.serial_spans().empty());
  bool any_execute = false;
  bool any_barrier = false;
  for (std::uint32_t s = 0; s < prof.num_shards(); ++s) {
    for (const obs::HostSpan& sp : prof.shard_spans(s)) {
      EXPECT_LE(sp.t0_ns, sp.t1_ns);
      any_execute |= sp.phase == obs::HostPhase::kExecute;
      any_barrier |= sp.phase == obs::HostPhase::kBarrier;
    }
  }
  EXPECT_TRUE(any_execute);
  EXPECT_TRUE(any_barrier);
  std::ostringstream os;
  obs::ChromeTraceOptions copt;
  copt.host_threads = 2;
  obs::write_chrome_trace(os, t, copt);
  EXPECT_NE(os.str().find("host rounds (wall clock)"), std::string::npos);
  EXPECT_NE(os.str().find("serial phase"), std::string::npos);
}

TEST(TelemetryExport, MetricsCarrySampledSeriesAndFinalCounters) {
  const ArchConfig cfg = ArchConfig::shared_mesh(16);
  const RunResult r = run_with_telemetry(cfg, dwarf_root("spmxv"), 50);
  obs::TelemetryOptions opt;
  opt.metrics_interval_cycles = 50;
  obs::Telemetry t(opt);
  Engine sim(cfg);
  sim.set_telemetry(&t);
  (void)sim.run(dwarf_root("spmxv"));
  obs::MetricsRegistry& m = t.metrics();
  EXPECT_EQ(m.counter("messages"), r.stats.messages);
  EXPECT_EQ(m.counter("sync_stalls"), r.stats.sync_stalls);
  EXPECT_NE(m.find_series("occupancy"), nullptr);
  EXPECT_NE(m.find_series("runnable_cores"), nullptr);
  const auto* occ = m.find_series("occupancy");
  ASSERT_NE(occ, nullptr);
  EXPECT_FALSE(occ->empty());
}

}  // namespace
}  // namespace simany
