#include <gtest/gtest.h>

#include "mem/pessimistic_l1.h"
#include "mem/setassoc_cache.h"

namespace simany::mem {
namespace {

// ---- PessimisticL1 ----------------------------------------------------

TEST(PessimisticL1, FirstAccessMissesThenHits) {
  PessimisticL1 l1(32);
  auto r1 = l1.access(100, 8);
  EXPECT_EQ(r1.miss_lines, 1u);
  EXPECT_EQ(r1.hit_lines, 0u);
  auto r2 = l1.access(100, 8);
  EXPECT_EQ(r2.miss_lines, 0u);
  EXPECT_EQ(r2.hit_lines, 1u);
}

TEST(PessimisticL1, SameLineDifferentOffsetHits) {
  PessimisticL1 l1(32);
  (void)l1.access(0, 4);
  auto r = l1.access(28, 4);
  EXPECT_EQ(r.hit_lines, 1u);
}

TEST(PessimisticL1, MultiLineAccessCountsEachLine) {
  PessimisticL1 l1(32);
  // 100 bytes from offset 0 spans lines 0..3 (4 lines).
  auto r = l1.access(0, 100);
  EXPECT_EQ(r.miss_lines, 4u);
  auto r2 = l1.access(0, 100);
  EXPECT_EQ(r2.hit_lines, 4u);
}

TEST(PessimisticL1, StraddlingAccessSplitsLines) {
  PessimisticL1 l1(32);
  // 8 bytes starting at 28 touches lines 0 and 1.
  auto r = l1.access(28, 8);
  EXPECT_EQ(r.miss_lines, 2u);
}

TEST(PessimisticL1, FlushForgetsEverything) {
  PessimisticL1 l1(32);
  (void)l1.access(0, 64);
  EXPECT_GT(l1.resident_lines(), 0u);
  l1.flush();
  EXPECT_EQ(l1.resident_lines(), 0u);
  auto r = l1.access(0, 8);
  EXPECT_EQ(r.miss_lines, 1u);
}

TEST(PessimisticL1, InvalidateDropsOneLine) {
  PessimisticL1 l1(32);
  (void)l1.access(0, 64);  // lines 0 and 1
  l1.invalidate(0);
  EXPECT_FALSE(l1.contains_line(0));
  EXPECT_TRUE(l1.contains_line(1));
}

TEST(PessimisticL1, ZeroByteAccessTouchesOneLine) {
  PessimisticL1 l1(32);
  auto r = l1.access(10, 0);
  EXPECT_EQ(r.miss_lines + r.hit_lines, 1u);
}

// ---- SetAssocCache -----------------------------------------------------

TEST(SetAssoc, HitAfterFill) {
  SetAssocCache c({1024, 32, 2});
  EXPECT_FALSE(c.access(64, false).hit);
  EXPECT_TRUE(c.access(64, false).hit);
  EXPECT_TRUE(c.contains(64));
}

TEST(SetAssoc, LruEvictionOrder) {
  // 2-way, line 32, 2 sets: set = line % 2.
  SetAssocCache c({128, 32, 2});
  // Three lines mapping to set 0: lines 0, 2, 4 (addresses 0, 64, 128).
  (void)c.access(0, false);
  (void)c.access(64, false);
  (void)c.access(0, false);    // line 0 now MRU
  (void)c.access(128, false);  // evicts line 2 (LRU)
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(64));
  EXPECT_TRUE(c.contains(128));
}

TEST(SetAssoc, DirtyEvictionReported) {
  SetAssocCache c({128, 32, 2});
  (void)c.access(0, true);  // dirty line 0 in set 0
  (void)c.access(64, false);
  const auto r = c.access(128, false);  // evicts dirty line 0
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(r.evicted_line, 0u);
}

TEST(SetAssoc, WriteOnHitSetsDirty) {
  SetAssocCache c({128, 32, 2});
  (void)c.access(0, false);
  (void)c.access(0, true);  // hit-write marks dirty
  (void)c.access(64, false);
  const auto r = c.access(128, false);
  EXPECT_TRUE(r.evicted_dirty);
}

TEST(SetAssoc, InvalidateReturnsDirtiness) {
  SetAssocCache c({1024, 32, 2});
  (void)c.access(32, true);
  EXPECT_TRUE(c.invalidate_addr(32));
  EXPECT_FALSE(c.contains(32));
  (void)c.access(32, false);
  EXPECT_FALSE(c.invalidate_addr(32));
  EXPECT_FALSE(c.invalidate_addr(9999));
}

TEST(SetAssoc, FlushClearsAll) {
  SetAssocCache c({1024, 32, 2});
  (void)c.access(0, true);
  (void)c.access(640, false);
  c.flush();
  EXPECT_FALSE(c.contains(0));
  EXPECT_FALSE(c.contains(640));
}

TEST(SetAssoc, HitAndMissCounters) {
  SetAssocCache c({1024, 32, 2});
  (void)c.access(0, false);
  (void)c.access(0, false);
  (void)c.access(32, false);
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(SetAssoc, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache({0, 32, 2}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache({1024, 0, 2}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache({1024, 32, 0}), std::invalid_argument);
  EXPECT_THROW(SetAssocCache({32, 32, 4}), std::invalid_argument);
}

TEST(SetAssoc, FullyAssociativeWorks) {
  // One set: size == line * ways.
  SetAssocCache c({128, 32, 4});
  for (std::uint64_t a = 0; a < 4 * 32; a += 32) (void)c.access(a, false);
  for (std::uint64_t a = 0; a < 4 * 32; a += 32) {
    EXPECT_TRUE(c.access(a, false).hit);
  }
  (void)c.access(999, false);  // evicts exactly one LRU way
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(32));
}

TEST(SetAssoc, WorkingSetLargerThanCacheThrashes) {
  SetAssocCache c({1024, 32, 2});
  const std::uint64_t span = 4 * 1024;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < span; a += 32) (void)c.access(a, false);
  }
  // Second pass should also miss everywhere (LRU + sequential sweep).
  EXPECT_EQ(c.hits(), 0u);
}

}  // namespace
}  // namespace simany::mem
