// I/O fault hardening suite (src/io + src/recover/artifacts).
//
// Every failure a full disk, a dying device or a read-only mount can
// inject into an artifact write must surface as a structured SimError
// from the I/O taxonomy — and the destination file must be left with
// either its old bytes or the new bytes, never a truncation. On top of
// the writer sits the degrade-vs-abort policy: telemetry-grade exports
// warn and keep going, durability-grade exports (snapshots) abort
// loudly. Fault injection uses the test-only write shim in
// io/atomic_write.h (fails the Nth low-level write with a chosen
// errno).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/sim_error.h"
#include "dwarfs/dwarfs.h"
#include "io/atomic_write.h"
#include "obs/status.h"
#include "recover/artifacts.h"
#include "snapshot/controller.h"
#include "snapshot/snapshot.h"

namespace simany {
namespace {

class WriteFault : public ::testing::Test {
 protected:
  void TearDown() override { io::clear_write_fault(); }

  static std::string temp_path(const std::string& name) {
    // Pid-qualified: concurrent suite invocations must not share files.
    return ::testing::TempDir() + "simany_io_" +
           std::to_string(::getpid()) + "_" + name;
  }

  static std::string read_all(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  static bool exists(const std::string& path) {
    std::ifstream in(path);
    return in.good();
  }
};

// ---- errno -> taxonomy mapping -------------------------------------

TEST_F(WriteFault, ErrnoTaxonomy) {
  EXPECT_EQ(SimErrorCode::kIoNoSpace, io::io_error_code(ENOSPC));
  EXPECT_EQ(SimErrorCode::kIoNoSpace, io::io_error_code(EDQUOT));
  EXPECT_EQ(SimErrorCode::kIoReadOnly, io::io_error_code(EROFS));
  EXPECT_EQ(SimErrorCode::kIoReadOnly, io::io_error_code(EACCES));
  EXPECT_EQ(SimErrorCode::kIoReadOnly, io::io_error_code(EPERM));
  EXPECT_EQ(SimErrorCode::kIoError, io::io_error_code(EIO));
  EXPECT_EQ(SimErrorCode::kIoError, io::io_error_code(0));
  // None of the I/O codes is transient: a full disk does not heal by
  // rerunning, so the CLI retry loop must not spin on them.
  EXPECT_FALSE(is_transient(SimErrorCode::kIoNoSpace));
  EXPECT_FALSE(is_transient(SimErrorCode::kIoReadOnly));
  EXPECT_FALSE(is_transient(SimErrorCode::kIoError));
}

// ---- atomic_write_file ---------------------------------------------

TEST_F(WriteFault, SuccessfulWriteRoundTrips) {
  const std::string path = temp_path("roundtrip");
  io::AtomicWriteOptions opts;
  opts.verify_readback = true;
  io::atomic_write_file(path, "payload-bytes", opts);
  EXPECT_EQ("payload-bytes", read_all(path));
  EXPECT_FALSE(exists(path + ".tmp")) << "temp file left behind";
  std::remove(path.c_str());
}

TEST_F(WriteFault, EnospcSurfacesAsStructuredError) {
  const std::string path = temp_path("enospc");
  std::remove(path.c_str());  // stale state from earlier suite runs
  io::set_write_fault(0, ENOSPC);
  try {
    io::atomic_write_file(path, "doomed");
    FAIL() << "injected ENOSPC did not throw";
  } catch (const SimError& e) {
    EXPECT_EQ(SimErrorCode::kIoNoSpace, e.code());
    EXPECT_NE(std::string::npos, std::string(e.what()).find("ENOSPC"));
  }
  EXPECT_FALSE(exists(path)) << "destination materialized despite failure";
  EXPECT_FALSE(exists(path + ".tmp")) << "temp file leaked on failure";
}

TEST_F(WriteFault, EioSurfacesAsIoError) {
  const std::string path = temp_path("eio");
  io::set_write_fault(0, EIO);
  try {
    io::atomic_write_file(path, "doomed");
    FAIL() << "injected EIO did not throw";
  } catch (const SimError& e) {
    EXPECT_EQ(SimErrorCode::kIoError, e.code());
  }
}

TEST_F(WriteFault, FailedReplacePreservesOldBytes) {
  const std::string path = temp_path("preserve");
  io::atomic_write_file(path, "old-contents");
  io::set_write_fault(0, ENOSPC);
  EXPECT_THROW(io::atomic_write_file(path, "new-contents"), SimError);
  io::clear_write_fault();
  EXPECT_EQ("old-contents", read_all(path))
      << "failed replace tore the destination";
  std::remove(path.c_str());
}

TEST_F(WriteFault, MidStreamFaultStillCleansUp) {
  const std::string path = temp_path("midstream");
  std::remove(path.c_str());  // stale state from earlier suite runs
  // Large body takes several bounded-chunk write() calls; fail the
  // second so the temp file holds a partial prefix at fault time.
  const std::string big(1u << 20, 'x');
  io::set_write_fault(1, ENOSPC);
  EXPECT_THROW(io::atomic_write_file(path, big), SimError);
  io::clear_write_fault();
  EXPECT_FALSE(exists(path));
  EXPECT_FALSE(exists(path + ".tmp"));
}

// ---- degrade-vs-abort policy ---------------------------------------

TEST_F(WriteFault, DegradePolicySwallowsAndReportsFalse) {
  const std::string path = temp_path("degrade");
  io::set_write_fault(0, ENOSPC);
  bool filled = false;
  const bool ok = recover::write_artifact(
      path, "test artifact", recover::FailPolicy::kDegrade,
      [&](std::ostream& os) {
        filled = true;
        os << "body";
      });
  EXPECT_TRUE(filled);
  EXPECT_FALSE(ok);
  EXPECT_FALSE(exists(path));
}

TEST_F(WriteFault, AbortPolicyRethrows) {
  const std::string path = temp_path("abort");
  io::set_write_fault(0, EROFS);
  try {
    (void)recover::write_artifact(path, "test artifact",
                                  recover::FailPolicy::kAbort,
                                  [](std::ostream& os) { os << "body"; });
    FAIL() << "kAbort swallowed the failure";
  } catch (const SimError& e) {
    EXPECT_EQ(SimErrorCode::kIoReadOnly, e.code());
  }
}

TEST_F(WriteFault, HealthyArtifactWrites) {
  const std::string path = temp_path("artifact_ok");
  const bool ok = recover::write_artifact(
      path, "test artifact", recover::FailPolicy::kDegrade,
      [](std::ostream& os) { os << "line1\nline2\n"; });
  EXPECT_TRUE(ok);
  EXPECT_EQ("line1\nline2\n", read_all(path));
  std::remove(path.c_str());
}

// ---- consumers of the policy ---------------------------------------

TEST_F(WriteFault, StatusHeartbeatDegradesInsteadOfAborting) {
  const std::string path = temp_path("status");
  obs::StatusReporter status(path, /*interval_ms=*/0);
  EXPECT_FALSE(status.disabled());

  io::set_write_fault(0, EIO);
  // The engine calls write() at every barrier; a heartbeat that cannot
  // persist must disable itself, not take the simulation down.
  status.write(obs::StatusSample{});
  EXPECT_TRUE(status.disabled());
  io::clear_write_fault();
  status.write(obs::StatusSample{});  // stays disabled, stays silent
  EXPECT_TRUE(status.disabled());
  EXPECT_EQ(0u, status.writes());
}

TEST_F(WriteFault, SnapshotWriteFailureAbortsLoudly) {
  ArchConfig cfg = ArchConfig::shared_mesh(8);
  Engine sim(cfg);
  const std::uint64_t wf = snapshot::workload_fingerprint("spmxv", 1, 0.02);
  (void)sim.run(dwarfs::dwarf_by_name("spmxv").make_root(1, 0.02));
  const snapshot::SnapshotFile file =
      snapshot::Controller::build(sim, wf, 0, 0, 0);

  const std::string path = temp_path("snapshot");
  io::set_write_fault(0, ENOSPC);
  // Durability-grade artifact: a checkpoint that silently failed to
  // persist is worse than a loud stop.
  try {
    snapshot::write_snapshot_file(path, file);
    FAIL() << "snapshot writer swallowed ENOSPC";
  } catch (const SimError& e) {
    EXPECT_EQ(SimErrorCode::kIoNoSpace, e.code());
  }
  io::clear_write_fault();
  EXPECT_FALSE(exists(path));

  // And the same write succeeds once space returns — with readback
  // verification, so the bytes on disk are the bytes in memory.
  snapshot::write_snapshot_file(path, file);
  const snapshot::SnapshotFile back = snapshot::read_snapshot_file(path);
  EXPECT_EQ(file.header.config_fp, back.header.config_fp);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simany
