// Regression tests for the paper's headline evaluation claims
// (SS VI), asserted at reduced dataset scale with comfortable margins.
// If an engine change breaks one of these, the reproduction no longer
// tells the paper's story — treat failures here as fidelity bugs even
// when all functional tests pass.
#include <gtest/gtest.h>

#include <cmath>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"

namespace simany {
namespace {

constexpr double kFactor = 0.15;
constexpr std::uint64_t kSeed = 1;

Tick vt(const char* dwarf, ArchConfig cfg) {
  Engine sim(std::move(cfg));
  return sim.run(dwarfs::dwarf_by_name(dwarf).make_root(kSeed, kFactor))
      .completion_ticks;
}

double speedup(const char* dwarf, ArchConfig (*mk)(std::uint32_t),
               std::uint32_t cores) {
  return double(vt(dwarf, mk(1))) / double(vt(dwarf, mk(cores)));
}

ArchConfig shared_cfg(std::uint32_t c) { return ArchConfig::shared_mesh(c); }
ArchConfig dist_cfg(std::uint32_t c) {
  return ArchConfig::distributed_mesh(c);
}

TEST(PaperClaims, DijkstraIsSuperLinearOnSharedMemory) {
  // Fig 8: "Dijkstra performs best and exhibits super-linear speedups"
  // — parallel exploration prunes redundant path relaxations.
  EXPECT_GT(speedup("dijkstra", shared_cfg, 64), 64.0);
}

TEST(PaperClaims, QuicksortStaysUnderItsTheoreticalBound) {
  // Fig 8: max speedup ~ log2(n)/2 because each pivot step is a
  // sequential scan of its sub-array.
  const std::size_t n = 15000;  // 100000 * kFactor
  const double bound = std::log2(double(n)) / 2.0;
  const double s = speedup("quicksort", shared_cfg, 64);
  EXPECT_GT(s, 2.0);
  EXPECT_LT(s, bound + 1.0);
}

TEST(PaperClaims, GoingFrom256To1024CoresChangesLittle) {
  // Fig 8: "for most benchmarks, going from 256 to 1024 cores does not
  // make a significant difference".
  for (const char* dwarf : {"quicksort", "spmxv", "barnes-hut"}) {
    const double s256 = speedup(dwarf, shared_cfg, 256);
    const double s1024 = speedup(dwarf, shared_cfg, 1024);
    EXPECT_NEAR(s1024 / s256, 1.0, 0.15) << dwarf;
  }
}

TEST(PaperClaims, DataContendedDwarfsCollapseOnDistributedMemory) {
  // Fig 9: Dijkstra and Connected Components collapse when every tag /
  // distance access moves a cell; Quicksort and SpMxV barely change.
  const double dj_shared = speedup("dijkstra", shared_cfg, 64);
  const double dj_dist = speedup("dijkstra", dist_cfg, 64);
  EXPECT_LT(dj_dist, dj_shared / 3.0);

  const double qs_shared = speedup("quicksort", shared_cfg, 64);
  const double qs_dist = speedup("quicksort", dist_cfg, 64);
  EXPECT_NEAR(qs_dist / qs_shared, 1.0, 0.3);

  const double sp_shared = speedup("spmxv", shared_cfg, 64);
  const double sp_dist = speedup("spmxv", dist_cfg, 64);
  EXPECT_NEAR(sp_dist / sp_shared, 1.0, 0.35);
}

TEST(PaperClaims, ConnectedComponentsDegradesAboveEightCoresDistributed) {
  // Fig 9: "Connected Components's performance actually degrades above
  // 8 cores, despite the run-time system's load-balancing property."
  const double s8 = speedup("connected-components", dist_cfg, 8);
  const double s256 = speedup("connected-components", dist_cfg, 256);
  EXPECT_LT(s256, s8 * 1.1);
}

TEST(PaperClaims, LargerTSpeedsUpSimulation) {
  // Fig 11: T = 1000 cuts simulation time vs T = 100 (paper: ~2.4x on
  // average). Wall-clock-based: assert via the cheap deterministic
  // proxies instead — stalls and fiber switches must drop sharply.
  auto run = [](Cycles t) {
    ArchConfig cfg = ArchConfig::shared_mesh(256);
    cfg.drift_t_cycles = t;
    Engine sim(cfg);
    return sim.run(
        dwarfs::dwarf_by_name("octree").make_root(kSeed, kFactor));
  };
  const auto tight = run(100);
  const auto loose = run(1000);
  EXPECT_LT(loose.fiber_switches, tight.fiber_switches);
  EXPECT_LT(loose.sync_stalls, tight.sync_stalls);
}

TEST(PaperClaims, RegularDwarfsInsensitiveToT) {
  // Fig 10: regular benchmarks "practically do not exhibit any
  // variation" as T changes.
  for (const char* dwarf : {"barnes-hut", "quicksort"}) {
    auto with_t = [dwarf](Cycles t) {
      ArchConfig cfg = ArchConfig::shared_mesh(64);
      cfg.drift_t_cycles = t;
      return double(vt(dwarf, std::move(cfg)));
    };
    // Tolerance 12%: at reduced dataset scale the lax schedule shifts
    // task-placement decisions more than at paper scale (paper: <2%).
    EXPECT_NEAR(with_t(1000) / with_t(100), 1.0, 0.12) << dwarf;
  }
}

TEST(PaperClaims, ClusteringHelpsDataContendedDwarfsAtScale) {
  // Fig 12: at large core counts the clustered mesh (fast local links)
  // benefits the communication-heavy dwarfs most; SpMxV is unmoved.
  auto clustered = [](std::uint32_t c) {
    return ArchConfig::clustered(ArchConfig::distributed_mesh(c), 4);
  };
  const double dj_flat = speedup("dijkstra", dist_cfg, 256);
  const double dj_clus = speedup("dijkstra", clustered, 256);
  EXPECT_GT(dj_clus, dj_flat * 0.95);  // at least roughly as good

  const double sp_flat = speedup("spmxv", dist_cfg, 256);
  const double sp_clus = speedup("spmxv", clustered, 256);
  EXPECT_NEAR(sp_clus / sp_flat, 1.0, 0.1);
}

TEST(PaperClaims, PolymorphicMachinesLoseWithNaiveRuntime) {
  // Fig 13: same cumulative compute power, worse results — "the
  // run-time system ... has a harder time at balancing the load".
  // Same cumulative compute power at the same machine size: compare
  // execution times directly (the paper's Fig 13 uses equal-power
  // machines for exactly this reason).
  int worse = 0;
  for (const char* dwarf :
       {"quicksort", "octree", "barnes-hut", "spmxv",
        "connected-components"}) {
    const Tick uni = vt(dwarf, ArchConfig::distributed_mesh(64));
    const Tick pol = vt(
        dwarf, ArchConfig::polymorphic(ArchConfig::distributed_mesh(64)));
    if (pol > uni) ++worse;
  }
  EXPECT_GE(worse, 3) << "polymorphic should lose on most dwarfs";
}

TEST(PaperClaims, SpatialSyncBeatsGlobalWindowOnHostCost) {
  // SS VII: purely local synchronization keeps simulation cheap —
  // fewer context switches than a global bounded-slack window at the
  // same T on the same machine.
  auto run = [](SyncScheme scheme) {
    ArchConfig cfg = ArchConfig::shared_mesh(64);
    cfg.sync_scheme = scheme;
    Engine sim(cfg);
    return sim.run(
        dwarfs::dwarf_by_name("spmxv").make_root(kSeed, kFactor));
  };
  const auto spatial = run(SyncScheme::kSpatial);
  const auto global = run(SyncScheme::kBoundedSlack);
  EXPECT_LE(spatial.fiber_switches, global.fiber_switches);
}

TEST(PaperClaims, ValidationErrorStaysBoundedAt64Cores) {
  // Figs 5/6 headline: SiMany's speedups stay within a modest factor
  // of the cycle-level reference (paper: 22.9 % geometric-mean error at
  // 64 cores; we allow 2x at reduced scale for any single dwarf).
  for (const char* dwarf : {"barnes-hut", "quicksort", "spmxv"}) {
    auto sp = [dwarf](ExecutionMode mode, bool coherence) {
      auto mk = [coherence](std::uint32_t c) {
        ArchConfig cfg = ArchConfig::shared_mesh(c);
        cfg.mem.coherence_timing = coherence;
        return cfg;
      };
      Engine base(mk(1), mode);
      const Tick t1 =
          base.run(dwarfs::dwarf_by_name(dwarf).make_root(kSeed, kFactor))
              .completion_ticks;
      Engine par(mk(64), mode);
      const Tick tn =
          par.run(dwarfs::dwarf_by_name(dwarf).make_root(kSeed, kFactor))
              .completion_ticks;
      return double(t1) / double(tn);
    };
    const double cl = sp(ExecutionMode::kCycleLevel, true);
    const double vt_s = sp(ExecutionMode::kVirtualTime, true);
    EXPECT_LT(std::max(cl, vt_s) / std::min(cl, vt_s), 2.0) << dwarf;
  }
}

}  // namespace
}  // namespace simany
