// Run-time protocols under the cycle-level mode: the conservative
// scheduler must preserve the same semantics (exclusion, ordering,
// group completion) the virtual-time mode guarantees.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"

namespace simany {
namespace {

TEST(ClProtocols, LockExclusionHolds) {
  Engine sim(ArchConfig::shared_mesh(4), ExecutionMode::kCycleLevel);
  int in_cs = 0;
  bool overlap = false;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    const LockId lk = ctx.make_lock();
    for (int i = 0; i < 6; ++i) {
      spawn_or_run(ctx, g, [&, lk](TaskCtx& c) {
        c.lock(lk);
        if (++in_cs != 1) overlap = true;
        c.compute(100);
        --in_cs;
        c.unlock(lk);
      });
    }
    ctx.join(g);
  });
  EXPECT_FALSE(overlap);
}

TEST(ClProtocols, DistributedCellsExclusive) {
  Engine sim(ArchConfig::distributed_mesh(4), ExecutionMode::kCycleLevel);
  int holders = 0;
  bool overlap = false;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    const CellId cell = ctx.make_cell_at(64, 3);
    for (int i = 0; i < 6; ++i) {
      spawn_or_run(ctx, g, [&, cell](TaskCtx& c) {
        c.cell_acquire(cell, AccessMode::kWrite);
        if (++holders != 1) overlap = true;
        c.compute(50);
        --holders;
        c.cell_release(cell);
      });
    }
    ctx.join(g);
  });
  EXPECT_FALSE(overlap);
}

TEST(ClProtocols, SameSenderTaskOrderPreserved) {
  ArchConfig cfg = ArchConfig::shared_mesh(2);
  cfg.runtime.task_queue_capacity = 8;
  Engine sim(cfg, ExecutionMode::kCycleLevel);
  std::vector<int> order;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 5; ++i) {
      if (ctx.probe()) {
        ctx.spawn(g, [&order, i](TaskCtx&) { order.push_back(i); });
      }
    }
    ctx.join(g);
  });
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_LT(order[k - 1], order[k]);
  }
}

TEST(ClProtocols, JoinSuspendAndMigrationWork) {
  Engine sim(ArchConfig::shared_mesh(16), ExecutionMode::kCycleLevel);
  int done = 0;
  const auto stats = sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 64; ++i) {
      spawn_or_run(ctx, g, [&done](TaskCtx& c) {
        c.compute(300);
        ++done;
      });
    }
    ctx.join(g);
  });
  EXPECT_EQ(done, 64);
  EXPECT_GE(stats.joins_suspended, 1u);
}

TEST(ClProtocols, RecursiveLockRejectedInClModeToo) {
  Engine sim(ArchConfig::shared_mesh(4), ExecutionMode::kCycleLevel);
  EXPECT_THROW((void)sim.run([](TaskCtx& ctx) {
                 const LockId a = ctx.make_lock();
                 ctx.lock(a);
                 ctx.lock(a);
               }),
               std::logic_error);
}

TEST(ClProtocols, DeadlockDetectedInClMode) {
  Engine sim(ArchConfig::shared_mesh(4), ExecutionMode::kCycleLevel);
  EXPECT_THROW((void)sim.run([](TaskCtx& ctx) {
                 const GroupId g = ctx.make_group();
                 const LockId a = ctx.make_lock();
                 ctx.lock(a);
                 ASSERT_TRUE(ctx.probe());
                 ctx.spawn(g, [a](TaskCtx& c) {
                   c.lock(a);  // never granted
                   c.unlock(a);
                 });
                 ctx.join(g);
               }),
               std::runtime_error);
}

TEST(ClProtocols, StrictOrderMeansEarliestCoreRuns) {
  // The CL scheduler's min-time policy keeps cores closely coupled:
  // with two equal workloads the per-core completion times match.
  Engine sim(ArchConfig::shared_mesh(2), ExecutionMode::kCycleLevel);
  const auto stats = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    ASSERT_TRUE(ctx.probe());
    ctx.spawn(g, [](TaskCtx& c) { c.compute(5000); });
    ctx.compute(5000);
    ctx.join(g);
  });
  ASSERT_EQ(stats.core_busy_ticks.size(), 2u);
  const double a = double(stats.core_busy_ticks[0]);
  const double b = double(stats.core_busy_ticks[1]);
  EXPECT_NEAR(a / b, 1.0, 0.2);
}

}  // namespace
}  // namespace simany
