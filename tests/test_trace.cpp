#include "stats/trace_sinks.h"

#include <gtest/gtest.h>

#include <sstream>

#include "config/arch_config.h"
#include "core/engine.h"

namespace simany {
namespace {

TaskFn small_program() {
  return [](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 8; ++i) {
      spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(500); });
    }
    ctx.join(g);
  };
}

TEST(Trace, ActivitySummaryCountsTasks) {
  stats::ActivitySummary summary(16);
  Engine sim(ArchConfig::shared_mesh(16));
  sim.set_trace(&summary);
  const auto st = sim.run(small_program());
  // Root + every spawned (not inlined) task starts and ends.
  EXPECT_EQ(summary.total_tasks(),
            1 + st.tasks_spawned + st.tasks_migrated * 0);
  std::ostringstream out;
  summary.print(out);
  EXPECT_FALSE(out.str().empty());
}

TEST(Trace, MessageHistogramMatchesStats) {
  stats::MessageHistogram histogram;
  Engine sim(ArchConfig::shared_mesh(16));
  sim.set_trace(&histogram);
  const auto st = sim.run(small_program());
  EXPECT_EQ(histogram.total(), st.messages);
  EXPECT_EQ(histogram.count(MsgKind::kProbe), st.probes_sent);
  EXPECT_EQ(histogram.count(MsgKind::kTaskSpawn),
            st.tasks_spawned + st.tasks_migrated);
}

TEST(Trace, CsvTraceEmitsHeaderAndRows) {
  std::ostringstream out;
  stats::CsvTrace csv(out);
  Engine sim(ArchConfig::shared_mesh(4));
  sim.set_trace(&csv);
  (void)sim.run(small_program());
  EXPECT_GT(csv.rows(), 0u);
  const std::string s = out.str();
  EXPECT_EQ(s.rfind("event,core,ticks,extra", 0), 0u);
  EXPECT_NE(s.find("task_start"), std::string::npos);
  EXPECT_NE(s.find("task_end"), std::string::npos);
  EXPECT_NE(s.find("message"), std::string::npos);
}

TEST(Trace, StallEventsAppearUnderTightT) {
  std::ostringstream out;
  stats::CsvTrace csv(out);
  ArchConfig cfg = ArchConfig::shared_mesh(2);
  cfg.drift_t_cycles = 5;
  Engine sim(cfg);
  sim.set_trace(&csv);
  const auto st = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    ASSERT_TRUE(ctx.probe());
    ctx.spawn(g, [](TaskCtx& c) {
      for (int i = 0; i < 500; ++i) c.compute(1);
    });
    for (int i = 0; i < 5; ++i) ctx.compute(1000);
    ctx.join(g);
  });
  ASSERT_GT(st.sync_stalls, 0u);
  EXPECT_NE(out.str().find("stall"), std::string::npos);
  EXPECT_NE(out.str().find("wake"), std::string::npos);
}

TEST(Trace, TeeFansOut) {
  stats::MessageHistogram h1, h2;
  stats::TeeTrace tee;
  tee.add(&h1);
  tee.add(&h2);
  Engine sim(ArchConfig::shared_mesh(4));
  sim.set_trace(&tee);
  (void)sim.run(small_program());
  EXPECT_EQ(h1.total(), h2.total());
  EXPECT_GT(h1.total(), 0u);
}

TEST(Trace, DetachWorks) {
  stats::MessageHistogram histogram;
  Engine sim(ArchConfig::shared_mesh(4));
  sim.set_trace(&histogram);
  sim.set_trace(nullptr);
  (void)sim.run(small_program());
  EXPECT_EQ(histogram.total(), 0u);
}

}  // namespace
}  // namespace simany
