// Cycle-level baseline behaviour and CL-vs-VT validation properties.
#include <gtest/gtest.h>

#include "cyclesim/cycle_sim.h"
#include "dwarfs/dwarfs.h"

namespace simany {
namespace {

constexpr double kTiny = 0.04;

TEST(CycleSim, FactoryProducesCycleLevelEngine) {
  auto sim = cyclesim::make_cycle_sim(ArchConfig::shared_mesh(4));
  EXPECT_EQ(sim->mode(), ExecutionMode::kCycleLevel);
}

TEST(CycleSim, ValidationConfigEnablesCoherenceOnShared) {
  const auto cfg =
      cyclesim::validation_vt_config(ArchConfig::shared_mesh(4));
  EXPECT_TRUE(cfg.mem.coherence_timing);
}

TEST(CycleSim, ValidationConfigLeavesDistributedAlone) {
  const auto cfg =
      cyclesim::validation_vt_config(ArchConfig::distributed_mesh(4));
  EXPECT_FALSE(cfg.mem.coherence_timing);
}

TEST(CycleSim, RunsEveryDwarf) {
  for (const auto& spec : dwarfs::validation_dwarfs()) {
    auto sim = cyclesim::make_cycle_sim(ArchConfig::shared_mesh(4));
    const auto stats = sim->run(spec.make_root(3, kTiny));
    EXPECT_GT(stats.completion_cycles(), 0u) << spec.name;
  }
}

TEST(CycleSim, DeterministicAcrossRuns) {
  auto once = [] {
    auto sim = cyclesim::make_cycle_sim(ArchConfig::shared_mesh(8));
    return sim->run(dwarfs::dwarf_by_name("spmxv").make_root(5, kTiny))
        .completion_ticks;
  };
  EXPECT_EQ(once(), once());
}

TEST(CycleSim, NeverStallsOnSpatialSync) {
  auto sim = cyclesim::make_cycle_sim(ArchConfig::shared_mesh(8));
  const auto stats =
      sim->run(dwarfs::dwarf_by_name("octree").make_root(5, kTiny));
  EXPECT_EQ(stats.sync_stalls, 0u);
}

TEST(CycleSim, ChopsComputeIntoQuanta) {
  // One long block must produce many fiber switches in CL mode.
  auto sim = cyclesim::make_cycle_sim(ArchConfig::shared_mesh(2));
  const auto stats = sim->run([](TaskCtx& ctx) { ctx.compute(16000); });
  EXPECT_GE(stats.fiber_switches, 16000u / Engine::kClQuantumCycles);
}

TEST(CycleSim, QuantumIsConfigurable) {
  auto switches = [](Cycles quantum) {
    ArchConfig cfg = ArchConfig::shared_mesh(2);
    cfg.cl_quantum_cycles = quantum;
    Engine sim(std::move(cfg), ExecutionMode::kCycleLevel);
    return sim.run([](TaskCtx& ctx) { ctx.compute(4000); })
        .fiber_switches;
  };
  EXPECT_GT(switches(4), 3 * switches(64));
}

TEST(CycleSim, SpeedupsTrackVtWithinFactor) {
  // The headline validation property at test scale: CL and VT speedups
  // for a regular dwarf must agree within a factor of two at 16 cores.
  const auto& spec = dwarfs::dwarf_by_name("spmxv");
  auto speedup = [&](ExecutionMode mode, ArchConfig (*mk)(std::uint32_t)) {
    Engine base(mk(1), mode);
    const auto t1 = base.run(spec.make_root(9, kTiny)).completion_ticks;
    Engine par(mk(16), mode);
    const auto tn = par.run(spec.make_root(9, kTiny)).completion_ticks;
    return double(t1) / double(tn);
  };
  const double cl =
      speedup(ExecutionMode::kCycleLevel, [](std::uint32_t c) {
        return ArchConfig::shared_mesh(c);
      });
  const double vt =
      speedup(ExecutionMode::kVirtualTime, [](std::uint32_t c) {
        return cyclesim::validation_vt_config(ArchConfig::shared_mesh(c));
      });
  EXPECT_GT(cl, 1.0);
  EXPECT_GT(vt, 1.0);
  EXPECT_LT(std::max(cl, vt) / std::min(cl, vt), 2.0);
}

}  // namespace
}  // namespace simany
