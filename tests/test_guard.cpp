// Supervision subsystem (src/guard + engine guard_* integration).
//
// Covers the full robustness contract:
//   * taxonomy — SimErrorCode names and transience classification;
//   * budgets — the wall-clock deadline cancels a run mid-dwarf on both
//     host backends with every fiber unwound (ASan-clean), and the
//     virtual-time budget aborts deterministically;
//   * watchdog — a fabricated wedge (PR 3 fault injector) is detected
//     as a livelock within the configured round budget, while a
//     legitimately long critical section is exempt by construction;
//   * containment — task exceptions surface as SimError with core
//     context, and on the parallel host worker failures carry shard
//     context instead of calling std::terminate;
//   * resource guards — inbox-depth and fiber-pool exhaustion convert
//     into kResourceExhausted with backpressure counters;
//   * cancellation — Engine::request_cancel from another thread stops
//     the run with kCancelled;
//   * post-mortem — diagnose_stall classification and the
//     simany-crash-report-v1 writer.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/sim_error.h"
#include "guard/crash_report.h"
#include "guard/guard_config.h"
#include "net/topology.h"

namespace simany {
namespace {

// A workload that never finishes but keeps communicating, so the
// engine returns to the host loop (spawn/join yield points) and the
// guard's cooperative polls actually run. Virtual time advances
// forever: only a budget or a cancel can end the run.
TaskFn endless_generations() {
  return [](TaskCtx& ctx) {
    for (;;) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < 4; ++i) {
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(200); });
      }
      ctx.join(g);
    }
  };
}

SimError run_expecting_error(ArchConfig cfg, TaskFn root,
                             ExecutionMode mode = ExecutionMode::kVirtualTime,
                             SimStats* out_stats = nullptr,
                             EngineInspect* out_state = nullptr) {
  Engine sim(std::move(cfg), mode);
  try {
    (void)sim.run(std::move(root));
  } catch (const SimError& e) {
    if (out_stats != nullptr) *out_stats = sim.stats();
    if (out_state != nullptr) *out_state = sim.inspect();
    return e;
  }
  ADD_FAILURE() << "run completed; expected a SimError";
  return SimError("unreached", {});
}

// ---------------------------------------------------------------------
// Taxonomy and config validation
// ---------------------------------------------------------------------

TEST(SimErrorTaxonomy, NamesAreKebabCase) {
  EXPECT_STREQ(to_string(SimErrorCode::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(to_string(SimErrorCode::kVtimeBudgetExceeded),
               "vtime-budget-exceeded");
  EXPECT_STREQ(to_string(SimErrorCode::kLivelock), "livelock");
  EXPECT_STREQ(to_string(SimErrorCode::kDeadlock), "deadlock");
  EXPECT_STREQ(to_string(SimErrorCode::kWorkerException),
               "worker-exception");
  EXPECT_STREQ(to_string(SimErrorCode::kResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(to_string(SimErrorCode::kTaskException), "task-exception");
  EXPECT_STREQ(to_string(SimErrorCode::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(SimErrorCode::kMsgRetryExhausted),
               "msg-retry-exhausted");
}

TEST(SimErrorTaxonomy, OnlyDeadlineIsTransient) {
  for (const auto c :
       {SimErrorCode::kUnknown, SimErrorCode::kMsgRetryExhausted,
        SimErrorCode::kVtimeBudgetExceeded, SimErrorCode::kLivelock,
        SimErrorCode::kDeadlock, SimErrorCode::kWorkerException,
        SimErrorCode::kResourceExhausted, SimErrorCode::kTaskException,
        SimErrorCode::kCancelled}) {
    EXPECT_FALSE(is_transient(c)) << to_string(c);
  }
  EXPECT_TRUE(is_transient(SimErrorCode::kDeadlineExceeded));
}

TEST(SimErrorTaxonomy, ContextRidesTheException) {
  SimError::Context ctx;
  ctx.code = SimErrorCode::kResourceExhausted;
  ctx.core = 7;
  ctx.detail = 42;
  const SimError e("boom", ctx);
  EXPECT_EQ(e.code(), SimErrorCode::kResourceExhausted);
  EXPECT_FALSE(e.transient());
  EXPECT_EQ(e.context().core, 7u);
  EXPECT_EQ(e.context().detail, 42u);
  EXPECT_STREQ(e.what(), "boom");
}

TEST(GuardConfig, EnabledAndPollingSemantics) {
  guard::GuardConfig g;
  EXPECT_FALSE(g.enabled());
  EXPECT_FALSE(g.polling());
  g.max_inbox_depth = 8;
  EXPECT_TRUE(g.enabled());
  EXPECT_FALSE(g.polling());  // resource guards check at their own sites
  g.watchdog_rounds = 4;
  EXPECT_TRUE(g.polling());
  g.validate();  // fine
  g.poll_quanta = 0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(GuardConfig, ValidatedThroughArchConfig) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.guard.poll_quanta = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Budgets: wall deadline and virtual-time limit
// ---------------------------------------------------------------------

TEST(GuardDeadline, FiresMidRunOnSequentialHost) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.guard.deadline_ms = 30;
  cfg.guard.poll_quanta = 64;
  SimStats st;
  const SimError e = run_expecting_error(cfg, endless_generations(),
                                         ExecutionMode::kVirtualTime, &st);
  EXPECT_EQ(e.code(), SimErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(e.transient());
  // Partial stats were flushed before the throw: the run did real work.
  EXPECT_GT(st.tasks_spawned, 0u);
  EXPECT_NE(std::string(e.what()).find("deadline-exceeded"),
            std::string::npos);
}

TEST(GuardDeadline, FiresMidRunOnParallelHost) {
  // The catch path must unwind fibers living on worker-owned shards
  // and in-transit mailbox messages too; ASan verifies no stack leaks.
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.host.mode = HostMode::kParallel;
  cfg.host.threads = 4;
  cfg.host.shards = 4;
  cfg.guard.deadline_ms = 30;
  cfg.guard.poll_quanta = 64;
  SimStats st;
  const SimError e = run_expecting_error(cfg, endless_generations(),
                                         ExecutionMode::kVirtualTime, &st);
  EXPECT_EQ(e.code(), SimErrorCode::kDeadlineExceeded);
  EXPECT_GT(st.tasks_spawned, 0u);
}

TEST(GuardDeadline, FiresInCycleLevelMode) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.guard.deadline_ms = 30;
  cfg.guard.poll_quanta = 64;
  const SimError e = run_expecting_error(cfg, endless_generations(),
                                         ExecutionMode::kCycleLevel);
  EXPECT_EQ(e.code(), SimErrorCode::kDeadlineExceeded);
}

TEST(GuardVtimeBudget, DeterministicAbort) {
  auto run_once = [] {
    ArchConfig cfg = ArchConfig::shared_mesh(4);
    cfg.guard.max_vtime_cycles = 20000;
    cfg.guard.poll_quanta = 16;
    return run_expecting_error(cfg, endless_generations());
  };
  const SimError a = run_once();
  const SimError b = run_once();
  EXPECT_EQ(a.code(), SimErrorCode::kVtimeBudgetExceeded);
  EXPECT_FALSE(a.transient());
  // Unlike the wall deadline, the virtual budget is a pure function of
  // the run's inputs: reruns trip at the identical point.
  EXPECT_EQ(a.context().at_tick, b.context().at_tick);
  EXPECT_EQ(a.context().core, b.context().core);
  EXPECT_STREQ(a.what(), b.what());
}

TEST(GuardVtimeBudget, CompletedRunBeatsTheGuard) {
  // A run that finishes under budget must return stats, not throw —
  // even with every poll-based guard armed.
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.guard.deadline_ms = 60000;
  cfg.guard.max_vtime_cycles = 50'000'000;
  cfg.guard.watchdog_rounds = 50;
  cfg.guard.poll_quanta = 16;
  Engine sim(cfg);
  const auto st = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 16; ++i) {
      spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(100); });
    }
    ctx.join(g);
  });
  EXPECT_GT(st.completion_cycles(), 0u);
}

// ---------------------------------------------------------------------
// Watchdog: fabricated livelock vs long critical section
// ---------------------------------------------------------------------

/// Root that spawns enough children to reach the wedged core. The
/// join never completes (the wedged child spins forever), so only the
/// watchdog can end the run.
TaskFn spawn_fanout() {
  return [](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 8; ++i) {
      spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(100); });
    }
    ctx.join(g);
  };
}

TEST(GuardWatchdog, WedgedCoreDetectedAsLivelock) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.fault.seed = 5;
  cfg.fault.wedge_core_list = {1, 2};
  cfg.guard.watchdog_rounds = 4;
  cfg.guard.poll_quanta = 64;
  SimStats st;
  const SimError e = run_expecting_error(cfg, spawn_fanout(),
                                         ExecutionMode::kVirtualTime, &st);
  EXPECT_EQ(e.code(), SimErrorCode::kLivelock);
  EXPECT_FALSE(e.transient());
  EXPECT_GE(st.fault_core_wedges, 1u);
  EXPECT_EQ(e.context().fault_seed, 5u);
  // The laggard (wedged) core anchors the context.
  EXPECT_NE(e.context().core, ~0u);
}

TEST(GuardWatchdog, WedgeDetectedOnParallelHost) {
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.host.mode = HostMode::kParallel;
  cfg.host.threads = 2;
  cfg.host.shards = 2;
  cfg.fault.seed = 5;
  cfg.fault.wedge_core_list = {9};
  cfg.guard.watchdog_rounds = 4;
  cfg.guard.poll_quanta = 64;
  const SimError e = run_expecting_error(
      cfg,
      [](TaskCtx& ctx) {
        const GroupId g = ctx.make_group();
        for (int i = 0; i < 32; ++i) {
          spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(100); });
        }
        ctx.join(g);
      });
  EXPECT_EQ(e.code(), SimErrorCode::kLivelock);
}

TEST(GuardWatchdog, WedgeDetectedInCycleLevelMode) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.fault.seed = 5;
  cfg.fault.wedge_core_list = {1, 2};
  cfg.guard.watchdog_rounds = 4;
  cfg.guard.poll_quanta = 64;
  const SimError e = run_expecting_error(cfg, spawn_fanout(),
                                         ExecutionMode::kCycleLevel);
  EXPECT_EQ(e.code(), SimErrorCode::kLivelock);
}

TEST(GuardWatchdog, LongCriticalSectionNotFlagged) {
  // A lock holder charges its whole critical section on its own clock
  // in one quantum, so the clock sum moves every time it runs: the
  // watchdog must never flag contention behind a slow holder, even at
  // an aggressive poll cadence.
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.guard.watchdog_rounds = 6;
  cfg.guard.poll_quanta = 4;
  Engine sim(cfg);
  int done = 0;
  const auto st = sim.run([&](TaskCtx& ctx) {
    const LockId lk = ctx.make_lock();
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 3; ++i) {
      spawn_or_run(ctx, g, [&done, lk](TaskCtx& c) {
        c.lock(lk);
        c.compute(300000);  // very long critical section
        ++done;
        c.unlock(lk);
      });
    }
    ctx.join(g);
  });
  EXPECT_EQ(done, 3);
  EXPECT_GT(st.completion_cycles(), 300000u);
}

// ---------------------------------------------------------------------
// Containment: task and worker exceptions
// ---------------------------------------------------------------------

TEST(GuardContainment, TaskExceptionWrappedWithCoreContext) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  const SimError e = run_expecting_error(cfg, [](TaskCtx& ctx) {
    ctx.compute(50);
    throw std::runtime_error("application bug");
  });
  EXPECT_EQ(e.code(), SimErrorCode::kTaskException);
  EXPECT_NE(e.context().core, ~0u);
  EXPECT_NE(std::string(e.what()).find("application bug"),
            std::string::npos);
}

TEST(GuardContainment, WorkerExceptionCarriesShardContext) {
  // On the parallel host the throwing task runs on a worker thread;
  // the error must be captured, rethrown on the serial phase, and
  // annotated with the shard it surfaced on — never std::terminate.
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.host.mode = HostMode::kParallel;
  cfg.host.threads = 4;
  cfg.host.shards = 4;
  const SimError e = run_expecting_error(cfg, [](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 16; ++i) {
      spawn_or_run(ctx, g, [i](TaskCtx& c) {
        c.compute(100);
        if (i == 7) throw std::runtime_error("worker-side bug");
      });
    }
    ctx.join(g);
  });
  EXPECT_EQ(e.code(), SimErrorCode::kTaskException);
  EXPECT_NE(e.context().shard, ~0u);
  EXPECT_NE(std::string(e.what()).find("worker-side bug"),
            std::string::npos);
}

TEST(GuardContainment, ProtocolMisuseStaysLogicError) {
  // Engine-protocol misuse is a host-side bug, not a simulated-machine
  // failure: it must pass through containment untouched.
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  Engine sim(cfg);
  EXPECT_THROW((void)sim.run([](TaskCtx& ctx) {
                 ctx.spawn(ctx.make_group(), [](TaskCtx&) {});
               }),
               std::logic_error);
}

// ---------------------------------------------------------------------
// Resource guards
// ---------------------------------------------------------------------

TEST(GuardResources, FiberPoolExhaustionIsStructured) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.guard.max_live_fibers = 1;  // root alone saturates the budget
  SimStats st;
  const SimError e = run_expecting_error(
      cfg,
      [](TaskCtx& ctx) {
        const GroupId g = ctx.make_group();
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(100); });
        ctx.join(g);
      },
      ExecutionMode::kVirtualTime, &st);
  EXPECT_EQ(e.code(), SimErrorCode::kResourceExhausted);
  EXPECT_GE(st.guard_fiber_overflows, 1u);
  EXPECT_GE(st.live_fibers_peak, 2u);
}

TEST(GuardResources, InboxDepthGuardTrips) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.guard.max_inbox_depth = 1;
  SimStats st;
  const SimError e = run_expecting_error(
      cfg,
      [](TaskCtx& ctx) {
        for (;;) {
          const GroupId g = ctx.make_group();
          for (int i = 0; i < 8; ++i) {
            spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(500); });
          }
          ctx.join(g);
        }
      },
      ExecutionMode::kVirtualTime, &st);
  EXPECT_EQ(e.code(), SimErrorCode::kResourceExhausted);
  EXPECT_GE(st.guard_inbox_overflows, 1u);
  EXPECT_GE(st.inbox_depth_peak, 2u);
  EXPECT_GE(e.context().detail, 2u);  // observed depth rides along
}

TEST(GuardResources, PeaksTrackedWithoutTripping) {
  // Generous limits: the run completes and the peak gauges report.
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.guard.max_live_fibers = 10000;
  cfg.guard.max_inbox_depth = 10000;
  Engine sim(cfg);
  const auto st = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    for (int i = 0; i < 16; ++i) {
      spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(100); });
    }
    ctx.join(g);
  });
  EXPECT_GE(st.live_fibers_peak, 1u);
  EXPECT_GE(st.inbox_depth_peak, 1u);
}

// ---------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------

TEST(GuardCancel, RequestCancelFromAnotherThread) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.guard.poll_quanta = 64;
  Engine sim(cfg);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sim.request_cancel();
  });
  try {
    (void)sim.run(endless_generations());
    ADD_FAILURE() << "expected cancellation";
  } catch (const SimError& e) {
    EXPECT_EQ(e.code(), SimErrorCode::kCancelled);
    EXPECT_FALSE(e.transient());
  }
  canceller.join();
}

TEST(GuardCancel, CancelBeforeRunAbortsImmediately) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  Engine sim(cfg);
  sim.request_cancel();
  try {
    (void)sim.run(endless_generations());
    ADD_FAILURE() << "expected cancellation";
  } catch (const SimError& e) {
    EXPECT_EQ(e.code(), SimErrorCode::kCancelled);
  }
}

// ---------------------------------------------------------------------
// Post-mortem: stall diagnosis and the crash-report writer
// ---------------------------------------------------------------------

EngineInspect two_core_state() {
  EngineInspect s;
  s.cores.resize(2);
  s.cores[0].id = 0;
  s.cores[1].id = 1;
  return s;
}

TEST(StallDiagnosis, IdleStateIsNoStall) {
  const EngineInspect s = two_core_state();
  const auto d =
      guard::diagnose_stall(s, net::Topology::mesh2d(2));
  EXPECT_EQ(d.kind, guard::StallKind::kNoStall);
}

TEST(StallDiagnosis, RunnableHolderIsNotLivelock) {
  EngineInspect s = two_core_state();
  s.cores[0].has_fiber = true;  // holder can finish its section
  s.cores[1].waiting_reply = true;
  LockInspect lk;
  lk.id = 1;
  lk.held = true;
  lk.holder = 0;
  lk.waiters = {1};
  s.locks.push_back(lk);
  const auto d = guard::diagnose_stall(s, net::Topology::mesh2d(2));
  EXPECT_EQ(d.kind, guard::StallKind::kHolderProgress);
  EXPECT_NE(d.summary.find("critical section"), std::string::npos);
}

TEST(StallDiagnosis, PendingWorkWithoutEdgesIsLivelock) {
  EngineInspect s = two_core_state();
  s.cores[1].has_fiber = true;
  s.cores[1].queue_len = 2;
  const auto d = guard::diagnose_stall(s, net::Topology::mesh2d(2));
  EXPECT_EQ(d.kind, guard::StallKind::kLivelock);
}

TEST(CrashReport, EndToEndFromWedgedRun) {
  ArchConfig cfg = ArchConfig::shared_mesh(4);
  cfg.fault.seed = 5;
  cfg.fault.wedge_core_list = {1, 2};
  cfg.guard.watchdog_rounds = 4;
  cfg.guard.poll_quanta = 64;
  SimStats st;
  EngineInspect state;
  const SimError e = run_expecting_error(
      cfg, spawn_fanout(), ExecutionMode::kVirtualTime, &st, &state);

  guard::CrashReportInfo info;
  info.error = e.context();
  info.message = e.what();
  info.stats = st;
  info.num_cores = cfg.num_cores();
  std::ostringstream os;
  guard::write_crash_report(os, info, state, cfg.topology);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\": \"simany-crash-report-v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"code\": \"livelock\""), std::string::npos);
  EXPECT_NE(doc.find("\"fault_core_wedges\""), std::string::npos);
  EXPECT_NE(doc.find("\"per_core\""), std::string::npos);
  EXPECT_NE(doc.find("\"diagnosis\""), std::string::npos);
  // Four cores, four progress rows.
  std::size_t rows = 0;
  for (std::size_t p = doc.find("\"now_cycles\""); p != std::string::npos;
       p = doc.find("\"now_cycles\"", p + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 4u);
}

TEST(CrashReport, WriterEscapesAndNullsInvalidCores) {
  guard::CrashReportInfo info;
  info.error.code = SimErrorCode::kDeadlineExceeded;
  info.error.cause = "deadline-exceeded";
  info.message = "line1\nline2 \"quoted\"";
  info.num_cores = 2;
  const EngineInspect s = two_core_state();
  std::ostringstream os;
  guard::write_crash_report(os, info, s, net::Topology::mesh2d(2));
  const std::string doc = os.str();
  EXPECT_NE(doc.find("line1\\nline2 \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(doc.find("\"core\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"transient\": true"), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"no-stall\""), std::string::npos);
}

}  // namespace
}  // namespace simany
