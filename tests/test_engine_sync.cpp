// Behavioural tests of the spatial synchronization mechanism itself.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"

namespace simany {
namespace {

// Two neighbor cores with wildly different workloads: the long-running
// core must be throttled to the short one's pace + T, generating
// stalls.
SimStats run_unbalanced(Cycles t) {
  ArchConfig cfg = ArchConfig::shared_mesh(2);
  cfg.drift_t_cycles = t;
  Engine sim(cfg);
  return sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    ASSERT_TRUE(ctx.probe());
    ctx.spawn(g, [](TaskCtx& c) {
      // Slow-advancing neighbor: many tiny blocks.
      for (int i = 0; i < 2000; ++i) c.compute(1);
    });
    // Fast-advancing core: few huge blocks.
    for (int i = 0; i < 20; ++i) ctx.compute(10000);
    ctx.join(g);
  });
}

TEST(SpatialSync, SmallTCausesStalls) {
  const auto stats = run_unbalanced(10);
  EXPECT_GT(stats.sync_stalls, 0u);
}

TEST(SpatialSync, HugeTAvoidsStalls) {
  const auto stats = run_unbalanced(1'000'000);
  EXPECT_EQ(stats.sync_stalls, 0u);
}

TEST(SpatialSync, SmallerTMeansMoreStalls) {
  const auto tight = run_unbalanced(10);
  const auto loose = run_unbalanced(1000);
  EXPECT_GT(tight.sync_stalls, loose.sync_stalls);
}

TEST(SpatialSync, VirtualTimeInsensitiveToTForIndependentWork) {
  // For tasks that never interact after spawning, T changes the
  // simulation schedule but not the virtual-time result.
  auto run = [](Cycles t) {
    ArchConfig cfg = ArchConfig::shared_mesh(4);
    cfg.drift_t_cycles = t;
    Engine sim(cfg);
    return sim
        .run([](TaskCtx& ctx) {
          const GroupId g = ctx.make_group();
          for (int i = 0; i < 3; ++i) {
            if (ctx.probe()) {
              ctx.spawn(g, [](TaskCtx& c) { c.compute(5000); });
            }
          }
          ctx.compute(5000);
          ctx.join(g);
        })
        .completion_ticks;
  };
  const Tick t10 = run(10);
  const Tick t100 = run(100);
  const Tick t10000 = run(10000);
  EXPECT_EQ(t100, t10000);
  EXPECT_EQ(t10, t100);
}

TEST(SpatialSync, SoleActiveCoreRunsUnconstrained) {
  // One core, one task: no anchors, no stalls, exact timing.
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.drift_t_cycles = 10;
  Engine sim(cfg);
  const auto stats =
      sim.run([](TaskCtx& ctx) { ctx.compute(1'000'000); });
  EXPECT_EQ(stats.sync_stalls, 0u);
  EXPECT_EQ(stats.completion_cycles(), 1'000'010u);
}

TEST(SpatialSync, BirthTimeThrottlesSpawningCore) {
  // Paper Fig 3: a core that spawns a task into an idle network must
  // not run ahead of the new task's birth by more than ~T. We observe
  // this as stalls on the parent before the child starts.
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.drift_t_cycles = 20;
  Engine sim(cfg);
  const auto stats = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    ASSERT_TRUE(ctx.probe());
    ctx.spawn(g, [](TaskCtx& c) { c.compute(10); });
    // Parent tries to race far ahead immediately after spawning.
    ctx.compute(100000);
    ctx.join(g);
  });
  EXPECT_GT(stats.sync_stalls, 0u);
}

TEST(SpatialSync, LockHolderExemptionPreventsDeadlock) {
  // Paper Fig 4: a lock holder suspended by spatial sync while a very
  // late task wants the lock. The exemption lets the holder finish its
  // critical section; the run must complete.
  ArchConfig cfg = ArchConfig::shared_mesh(2);
  cfg.drift_t_cycles = 20;
  Engine sim(cfg);
  bool done = false;
  (void)sim.run([&](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    const LockId lk = ctx.make_lock();
    ASSERT_TRUE(ctx.probe());
    ctx.spawn(g, [lk](TaskCtx& c) {
      c.lock(lk);
      // Critical section far longer than T: only the exemption lets
      // this finish while the (very late) parent waits for the lock.
      c.compute(5000);
      c.unlock(lk);
    });
    ctx.compute(1);  // stay "late"
    ctx.lock(lk);
    ctx.unlock(lk);
    ctx.join(g);
    done = true;
  });
  EXPECT_TRUE(done);
}

TEST(SpatialSync, RecursiveLockIsRejected) {
  // Locks are non-reentrant; re-acquiring is reported as API misuse
  // rather than silently self-deadlocking. Note that a classic AB-BA
  // deadlock is schedule-dependent and the engine's lax ordering may
  // legitimately dodge it (paper SS II-B: programs must be correct for
  // every lock acquisition order).
  Engine sim(ArchConfig::shared_mesh(4));
  EXPECT_THROW((void)sim.run([](TaskCtx& ctx) {
                 const LockId a = ctx.make_lock();
                 ctx.lock(a);
                 ctx.lock(a);
               }),
               std::logic_error);
}

TEST(SpatialSync, ForeignUnlockIsRejected) {
  Engine sim(ArchConfig::shared_mesh(4));
  EXPECT_THROW((void)sim.run([](TaskCtx& ctx) {
                 const LockId a = ctx.make_lock();
                 ctx.unlock(a);  // never held
               }),
               std::logic_error);
}

TEST(SpatialSync, ForeignCellReleaseIsRejected) {
  Engine sim(ArchConfig::shared_mesh(4));
  EXPECT_THROW((void)sim.run([](TaskCtx& ctx) {
                 const CellId cell = ctx.make_cell(64);
                 ctx.cell_release(cell);  // never acquired
               }),
               std::logic_error);
}

TEST(SpatialSync, WaiterStuckOnNeverReleasedLockIsDetected) {
  // A child blocks on a lock its parent never releases; once the parent
  // finishes all other work the simulation has no runnable core left.
  Engine sim(ArchConfig::shared_mesh(4));
  EXPECT_THROW((void)sim.run([](TaskCtx& ctx) {
                 const GroupId g = ctx.make_group();
                 const LockId a = ctx.make_lock();
                 ctx.lock(a);
                 ASSERT_TRUE(ctx.probe());
                 ctx.spawn(g, [a](TaskCtx& c) {
                   c.lock(a);  // never granted
                   c.unlock(a);
                 });
                 ctx.join(g);  // waits for the stuck child
               }),
               std::runtime_error);
}

TEST(SpatialSync, StallCountGrowsWithTightness) {
  // T is the accuracy/speed toggle: fiber switches should decrease
  // monotonically-ish as T grows on a communicating workload.
  auto switches = [](Cycles t) {
    ArchConfig cfg = ArchConfig::shared_mesh(16);
    cfg.drift_t_cycles = t;
    Engine sim(cfg);
    return sim
        .run([](TaskCtx& ctx) {
          const GroupId g = ctx.make_group();
          for (int i = 0; i < 64; ++i) {
            spawn_or_run(ctx, g, [](TaskCtx& c) {
              for (int j = 0; j < 50; ++j) c.compute(20);
            });
          }
          ctx.join(g);
        })
        .fiber_switches;
  };
  EXPECT_GT(switches(10), switches(1000));
}

TEST(SpatialSync, IdleCoreTransparencyKeepsDistantPairBounded) {
  // Two active cores at opposite corners of a 4x4 mesh, idle cores in
  // between (paper Fig 2 scenario, solved by shadow times). The late
  // core's many small steps must throttle the remote fast core: its
  // stall count must be nonzero.
  ArchConfig cfg = ArchConfig::shared_mesh(16);
  cfg.drift_t_cycles = 10;
  Engine sim(cfg);
  const auto stats = sim.run([](TaskCtx& ctx) {
    const GroupId g = ctx.make_group();
    // Chain spawns push one long task far from core 0.
    TaskFn far_task = [](TaskCtx& c) {
      for (int i = 0; i < 50; ++i) c.compute(10000);
    };
    spawn_or_run(ctx, g, far_task);
    for (int i = 0; i < 5000; ++i) ctx.compute(1);
    ctx.join(g);
  });
  EXPECT_GT(stats.sync_stalls, 0u);
}

}  // namespace
}  // namespace simany
