// Integration: every dwarf runs to completion — and self-verifies its
// result — on both memory models and on several mesh sizes. These are
// the paper's programs end-to-end through the full engine.
#include <gtest/gtest.h>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"
#include "runtime/native_sim.h"

namespace simany {
namespace {

constexpr double kTinyFactor = 0.04;  // scaled-down datasets for CI speed

struct Case {
  const char* dwarf;
  std::uint32_t cores;
  mem::MemoryModel model;
};

class DwarfIntegration : public ::testing::TestWithParam<Case> {};

TEST_P(DwarfIntegration, RunsAndVerifies) {
  const Case& p = GetParam();
  ArchConfig cfg = p.model == mem::MemoryModel::kShared
                       ? ArchConfig::shared_mesh(p.cores)
                       : ArchConfig::distributed_mesh(p.cores);
  Engine sim(cfg);
  const auto& spec = dwarfs::dwarf_by_name(p.dwarf);
  // Self-verification inside the root task throws on a wrong result.
  const auto stats = sim.run(spec.make_root(/*seed=*/42, kTinyFactor));
  EXPECT_GT(stats.completion_cycles(), 0u);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& spec : dwarfs::all_dwarfs()) {
    for (std::uint32_t cores : {1u, 4u, 16u}) {
      cases.push_back({spec.name.c_str(), cores, mem::MemoryModel::kShared});
      cases.push_back(
          {spec.name.c_str(), cores, mem::MemoryModel::kDistributed});
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string n = info.param.dwarf;
  for (auto& ch : n) {
    if (ch == '-') ch = '_';
  }
  n += "_" + std::to_string(info.param.cores) + "c";
  n += info.param.model == mem::MemoryModel::kShared ? "_shared" : "_dist";
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllDwarfs, DwarfIntegration,
                         ::testing::ValuesIn(all_cases()), case_name);

// Each dwarf also runs natively (no-op context): same code path used
// for the Fig 7 normalization baseline.
class DwarfNative : public ::testing::TestWithParam<const char*> {};

TEST_P(DwarfNative, RunsNatively) {
  const auto& spec = dwarfs::dwarf_by_name(GetParam());
  const double secs =
      runtime::run_native(spec.make_root(/*seed=*/7, kTinyFactor));
  EXPECT_GE(secs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDwarfs, DwarfNative,
    ::testing::Values("barnes-hut", "connected-components", "dijkstra",
                      "quicksort", "spmxv", "octree"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string n = info.param;
      for (auto& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

// Parallelism sanity: on the optimistic shared architecture a 16-core
// run must beat the 1-core run in virtual time for the regular dwarfs.
TEST(DwarfSpeedup, RegularDwarfsSpeedUp) {
  for (const char* name : {"spmxv", "octree", "barnes-hut"}) {
    const auto& spec = dwarfs::dwarf_by_name(name);
    Engine s1(ArchConfig::shared_mesh(1));
    const auto t1 = s1.run(spec.make_root(11, kTinyFactor));
    Engine s16(ArchConfig::shared_mesh(16));
    const auto t16 = s16.run(spec.make_root(11, kTinyFactor));
    EXPECT_LT(t16.completion_ticks, t1.completion_ticks)
        << name << ": no virtual-time speedup on 16 cores";
  }
}

}  // namespace
}  // namespace simany
