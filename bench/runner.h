// Shared measurement helpers for the figure benches.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "config/arch_config.h"
#include "core/engine.h"
#include "dwarfs/dwarfs.h"
#include "runtime/native_sim.h"

namespace simany::bench {

struct RunResult {
  Tick vt = 0;          // virtual completion time
  double wall = 0.0;    // host seconds for the simulation
};

/// Applies the harness --host-threads request: N > 1 selects the
/// parallel backend with N worker threads (shards default to N).
inline ArchConfig apply_host_threads(ArchConfig cfg,
                                     std::uint32_t threads) {
  if (threads > 1) {
    cfg.host.mode = HostMode::kParallel;
    cfg.host.threads = threads;
  }
  return cfg;
}

/// One simulated run of a dwarf dataset.
inline RunResult run_dwarf(const dwarfs::DwarfSpec& spec,
                           std::uint64_t seed, double factor,
                           ArchConfig cfg,
                           ExecutionMode mode = ExecutionMode::kVirtualTime) {
  Engine sim(std::move(cfg), mode);
  const auto stats = sim.run(spec.make_root(seed, factor));
  return RunResult{stats.completion_ticks, stats.wall_seconds};
}

/// Native execution time of the same dataset, repeated until at least
/// ~20 ms of wall time has been accumulated so the result is stable.
inline double native_seconds(const dwarfs::DwarfSpec& spec,
                             std::uint64_t seed, double factor) {
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  double elapsed = 0.0;
  do {
    runtime::NativeCtx ctx(seed);
    spec.make_root(seed, factor)(ctx);
    ++reps;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  } while (elapsed < 0.02 && reps < 1000);
  return elapsed / reps;
}

/// Mean virtual-time speedup of `cores` relative to 1 core over
/// `datasets` seeds. `make_cfg(cores)` builds the architecture.
inline double mean_speedup(
    const dwarfs::DwarfSpec& spec,
    const std::function<ArchConfig(std::uint32_t)>& make_cfg,
    std::uint32_t cores, double factor, int datasets, std::uint64_t seed0,
    ExecutionMode mode = ExecutionMode::kVirtualTime) {
  double sum = 0;
  for (int d = 0; d < datasets; ++d) {
    const std::uint64_t seed = seed0 + 1000ull * d;
    const auto base = run_dwarf(spec, seed, factor, make_cfg(1), mode);
    const auto run = run_dwarf(spec, seed, factor, make_cfg(cores), mode);
    sum += static_cast<double>(base.vt) / static_cast<double>(run.vt);
  }
  return sum / datasets;
}

}  // namespace simany::bench
