// Figure 7: Average Normalized Simulation Time.
//
// Host wall-clock time to simulate each benchmark, normalized to native
// execution of the same program, versus the number of simulated cores
// (1..1024). Each point averages the shared-memory and distributed-
// memory architecture types, like the paper's "all architecture
// configurations"; the paper reports ~1e4 at 1024 cores and notes that
// simulation time grows roughly as a square law in the core count, and
// that Barnes-Hut / Connected Components are the most expensive because
// of their distributed-memory data traffic.

#include <cmath>
#include <fstream>
#include <iostream>

#include "bench/harness.h"
#include "bench/runner.h"
#include "stats/report.h"

using namespace simany;

int main(int argc, char** argv) {
  const auto opt = bench::HarnessOptions::parse(argc, argv,
                                                /*default_factor=*/0.2,
                                                /*default_datasets=*/2);
  opt.print_header("Figure 7: Average Normalized Simulation Time");

  const auto axis = opt.exploration_axis();
  std::vector<double> xs(axis.begin(), axis.end());
  stats::FigureTable table(
      "Simulation wall time / native wall time vs # of cores", "cores",
      xs);

  for (const auto& spec : dwarfs::all_dwarfs()) {
    // Native baseline per dataset (architecture-independent).
    std::vector<double> native(opt.datasets);
    for (int d = 0; d < opt.datasets; ++d) {
      native[d] =
          bench::native_seconds(spec, opt.seed + 1000ull * d, opt.factor);
    }
    stats::Series s{spec.name, {}};
    std::vector<double> points;
    for (std::uint32_t cores : axis) {
      double sum = 0;
      int count = 0;
      for (int d = 0; d < opt.datasets; ++d) {
        const std::uint64_t seed = opt.seed + 1000ull * d;
        for (auto model :
             {mem::MemoryModel::kShared, mem::MemoryModel::kDistributed}) {
          ArchConfig cfg = model == mem::MemoryModel::kShared
                               ? ArchConfig::shared_mesh(cores)
                               : ArchConfig::distributed_mesh(cores);
          cfg = bench::apply_host_threads(std::move(cfg),
                                          opt.host_threads);
          const auto r =
              bench::run_dwarf(spec, seed, opt.factor, std::move(cfg));
          sum += r.wall / native[d];
          ++count;
        }
      }
      s.y.push_back(sum / count);
    }
    points = s.y;
    table.add_series(std::move(s));

    // Log-log growth exponent over the measured range (paper: ~2).
    if (axis.size() >= 2 && points.front() > 0 && points.back() > 0) {
      const double slope =
          std::log(points.back() / points.front()) /
          std::log(double(axis.back()) / double(axis.front()));
      std::cout << "# " << spec.name
                << ": log-log growth exponent = " << stats::fmt(slope)
                << "\n";
    }
  }
  table.print(std::cout);
  if (!opt.json_path.empty()) {
    // BENCH_fig07.json for the CI perf gate. The y values are wall
    // time over native time on the same host, so they compare across
    // machines of different speeds.
    std::ofstream js(opt.json_path);
    js << "{\"bench\":\"fig07_simtime\",\"metric\":"
          "\"sim_wall_over_native\",\"host_threads\":"
       << opt.host_threads << ",\"factor\":" << opt.factor
       << ",\"datasets\":" << opt.datasets << ",\"table\":";
    table.print_json(js);
    js << "}\n";
  }
  return 0;
}
