// Figure 12: Clustered 2D Mesh Speedups with 4 Clusters
// (Distributed-Memory).
//
// Clustered meshes: 0.5-cycle links inside a cluster, 4-cycle links
// between clusters, against the flat 1-cycle mesh. Paper shape: for
// small machines the inter-cluster latency dominates and the flat mesh
// wins; the situation reverses as the core count grows (average
// turning point ~78 cores); at 1024 cores the data-contended dwarfs
// gain most (Connected Components -28.7% execution time, Dijkstra
// -25.6%) while Quicksort (-2.2%) and SpMxV (-0.1%) barely move.
// A --clusters flag (default 4) also reproduces the 8-cluster variant
// the paper mentions.

#include <cstring>
#include <iostream>

#include "bench/harness.h"
#include "bench/runner.h"
#include "stats/report.h"

using namespace simany;

int main(int argc, char** argv) {
  std::uint32_t clusters_only = 0;  // 0 = run the paper's 4 and 8
  // Strip --clusters before the shared parser sees it.
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--clusters") == 0 && it + 1 != args.end()) {
      clusters_only = static_cast<std::uint32_t>(std::atoi(*(it + 1)));
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  const auto opt = bench::HarnessOptions::parse(
      static_cast<int>(args.size()), args.data(),
      /*default_factor=*/0.25, /*default_datasets=*/5);
  opt.print_header("Figure 12: Clustered 2D Mesh Speedups "
                   "(Distributed-Memory)");
  std::vector<std::uint32_t> cluster_counts =
      clusters_only != 0 ? std::vector<std::uint32_t>{clusters_only}
                         : std::vector<std::uint32_t>{4, 8};
  for (const std::uint32_t clusters : cluster_counts) {
  std::printf("\n# clusters=%u (intra 0.5 cycles, inter 4 cycles)\n",
              clusters);

  const auto axis = opt.exploration_axis();
  std::vector<double> xs(axis.begin(), axis.end());
  stats::FigureTable table("Virtual-time speedup vs # of cores", "cores",
                           xs);

  auto flat_cfg = [](std::uint32_t cores) {
    return ArchConfig::distributed_mesh(cores);
  };
  auto clustered_cfg = [clusters](std::uint32_t cores) {
    return ArchConfig::clustered(ArchConfig::distributed_mesh(cores),
                                 clusters);
  };

  for (const auto& spec : dwarfs::all_dwarfs()) {
    stats::Series flat{spec.name + " flat", {}};
    stats::Series clus{spec.name + " clustered", {}};
    for (std::uint32_t cores : axis) {
      flat.y.push_back(bench::mean_speedup(spec, flat_cfg, cores,
                                           opt.factor, opt.datasets,
                                           opt.seed));
      clus.y.push_back(bench::mean_speedup(spec, clustered_cfg, cores,
                                           opt.factor, opt.datasets,
                                           opt.seed));
    }
    // Execution-time change at the largest machine (paper quotes
    // -28.7% CC / -25.6% Dijkstra / -2.2% QS / -0.1% SpMxV @1024).
    const double delta =
        (flat.y.back() / clus.y.back() - 1.0) * 100.0;
    std::cout << "# " << spec.name << " @" << axis.back()
              << " cores: clustered execution time "
              << stats::fmt(delta) << "% vs flat\n";
    table.add_series(std::move(flat));
    table.add_series(std::move(clus));
  }
  table.print(std::cout);
  }
  return 0;
}
