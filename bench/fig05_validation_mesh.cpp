// Figure 5: Regular 2D Mesh Speedups, Cycle-Level Comparison.
//
// Speedups of the four validation dwarfs on the shared-memory
// architecture *with cache coherence*, 1..64 cores, from both the
// cycle-level reference simulator (CL) and SiMany's virtual-time
// engine with the abstract coherence-delay model enabled (VT).
//
// Also prints the geometric-mean relative error of VT speedups vs CL
// at 16/32/64 cores — the paper reports 8.8 % / 18.8 % / 22.9 %.

#include <iostream>
#include <map>

#include "bench/harness.h"
#include "bench/runner.h"
#include "cyclesim/cycle_sim.h"
#include "stats/report.h"

using namespace simany;

namespace {

int run_validation(int argc, char** argv, bool polymorphic) {
  const auto opt = bench::HarnessOptions::parse(argc, argv,
                                                /*default_factor=*/0.15,
                                                /*default_datasets=*/3,
                                                /*default_max_cores=*/64);
  opt.print_header(polymorphic
                       ? "Figure 6: Polymorphic 2D Mesh Speedups, "
                         "Cycle-Level Comparison"
                       : "Figure 5: Regular 2D Mesh Speedups, "
                         "Cycle-Level Comparison");

  const auto axis = opt.validation_axis();
  std::vector<double> xs(axis.begin(), axis.end());
  stats::FigureTable table("Speedup vs # of cores (CL = cycle-level, "
                           "VT = SiMany virtual time)",
                           "cores", xs);

  auto make_cfg = [polymorphic](std::uint32_t cores) {
    ArchConfig cfg = ArchConfig::shared_mesh(cores);
    if (polymorphic) cfg = ArchConfig::polymorphic(std::move(cfg));
    return cfg;
  };
  auto make_vt_cfg = [&](std::uint32_t cores) {
    return cyclesim::validation_vt_config(make_cfg(cores));
  };

  // error[cores] collects per-dwarf VT-vs-CL speedup errors.
  std::map<std::uint32_t, std::vector<double>> errors;

  for (const auto& spec : dwarfs::validation_dwarfs()) {
    stats::Series cl{spec.name + " CL", {}};
    stats::Series vt{spec.name + " VT", {}};
    for (std::uint32_t cores : axis) {
      const double s_cl =
          bench::mean_speedup(spec, make_cfg, cores, opt.factor,
                              opt.datasets, opt.seed,
                              ExecutionMode::kCycleLevel);
      const double s_vt =
          bench::mean_speedup(spec, make_vt_cfg, cores, opt.factor,
                              opt.datasets, opt.seed,
                              ExecutionMode::kVirtualTime);
      cl.y.push_back(s_cl);
      vt.y.push_back(s_vt);
      if (cores > 1) errors[cores].push_back(stats::rel_error(s_vt, s_cl));
    }
    table.add_series(std::move(cl));
    table.add_series(std::move(vt));
  }
  table.print(std::cout);

  std::cout << "\nGeometric-mean |VT-CL|/CL speedup error (paper: "
            << (polymorphic ? "22.2% @16, 30.3% @32, 33.4% @64"
                            : "8.8% @16, 18.8% @32, 22.9% @64")
            << "):\n";
  for (const auto& [cores, errs] : errors) {
    // Geometric mean over (1 + error) avoids zero-error blowups.
    std::vector<double> shifted;
    shifted.reserve(errs.size());
    for (double e : errs) shifted.push_back(1.0 + e);
    const double gm = stats::geo_mean(shifted) - 1.0;
    std::cout << "  " << cores << " cores: " << stats::fmt(gm * 100.0)
              << "%\n";
  }
  return 0;
}

}  // namespace

#ifndef SIMANY_FIG06
int main(int argc, char** argv) { return run_validation(argc, argv, false); }
#endif
#ifdef SIMANY_FIG06
int main(int argc, char** argv) { return run_validation(argc, argv, true); }
#endif
