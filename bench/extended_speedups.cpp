// Speedup curves for the extension dwarfs (matmul, stencil,
// histogram). NOT a paper figure: these workloads extend the suite to
// Berkeley-dwarf classes the paper did not port (dense linear algebra,
// structured grids, MapReduce) — see docs/programming_model.md.

#include <iostream>

#include "bench/harness.h"
#include "bench/runner.h"
#include "dwarfs/extended.h"
#include "stats/report.h"

using namespace simany;

int main(int argc, char** argv) {
  const auto opt = bench::HarnessOptions::parse(argc, argv,
                                                /*default_factor=*/0.15,
                                                /*default_datasets=*/2,
                                                /*default_max_cores=*/256);
  opt.print_header(
      "Extension dwarfs: shared- and distributed-memory speedups");

  const auto axis = opt.exploration_axis();
  std::vector<double> xs(axis.begin(), axis.end());
  stats::FigureTable table("Virtual-time speedup vs # of cores", "cores",
                           xs);

  auto shared_cfg = [](std::uint32_t c) {
    return ArchConfig::shared_mesh(c);
  };
  auto dist_cfg = [](std::uint32_t c) {
    return ArchConfig::distributed_mesh(c);
  };
  for (const auto& spec : dwarfs::extended_dwarfs()) {
    stats::Series sh{spec.name + " shared", {}};
    stats::Series di{spec.name + " distributed", {}};
    for (std::uint32_t cores : axis) {
      sh.y.push_back(bench::mean_speedup(spec, shared_cfg, cores,
                                         opt.factor, opt.datasets,
                                         opt.seed));
      di.y.push_back(bench::mean_speedup(spec, dist_cfg, cores,
                                         opt.factor, opt.datasets,
                                         opt.seed));
    }
    table.add_series(std::move(sh));
    table.add_series(std::move(di));
  }
  table.print(std::cout);
  return 0;
}
