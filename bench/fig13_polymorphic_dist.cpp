// Figure 13: Polymorphic 2D Mesh Speedups (Distributed-Memory).
//
// Polymorphic machines: every even core twice slower, every odd core
// faster by 3/2 — same cumulative computing power as the uniform mesh.
// Paper shape: Dijkstra and SpMxV decrease slightly; the other dwarfs
// decline more (-18.8% on average at 256/1024 cores) because the
// untuned run-time balances load poorly when slow cores cannot spawn
// tasks as fast as their faster neighbors.

#include <iostream>

#include "bench/harness.h"
#include "bench/runner.h"
#include "stats/report.h"

using namespace simany;

int main(int argc, char** argv) {
  const auto opt = bench::HarnessOptions::parse(argc, argv,
                                                /*default_factor=*/0.25,
                                                /*default_datasets=*/5);
  opt.print_header(
      "Figure 13: Polymorphic 2D Mesh Speedups (Distributed-Memory)");

  const auto axis = opt.exploration_axis();
  std::vector<double> xs(axis.begin(), axis.end());
  stats::FigureTable table("Virtual-time speedup vs # of cores", "cores",
                           xs);

  auto uniform_cfg = [](std::uint32_t cores) {
    return ArchConfig::distributed_mesh(cores);
  };
  auto poly_cfg = [](std::uint32_t cores) {
    return ArchConfig::polymorphic(ArchConfig::distributed_mesh(cores));
  };

  // Speedups are measured against the *uniform* 1-core baseline, so
  // the uniform and polymorphic curves are directly comparable (the
  // machines have identical total computing power).
  for (const auto& spec : dwarfs::all_dwarfs()) {
    stats::Series uni{spec.name + " uniform", {}};
    stats::Series poly{spec.name + " polymorphic", {}};
    for (std::uint32_t cores : axis) {
      double s_uni = 0, s_poly = 0;
      for (int d = 0; d < opt.datasets; ++d) {
        const std::uint64_t seed = opt.seed + 1000ull * d;
        const auto base =
            bench::run_dwarf(spec, seed, opt.factor, uniform_cfg(1));
        const auto u =
            bench::run_dwarf(spec, seed, opt.factor, uniform_cfg(cores));
        const auto p =
            bench::run_dwarf(spec, seed, opt.factor, poly_cfg(cores));
        s_uni += double(base.vt) / double(u.vt);
        s_poly += double(base.vt) / double(p.vt);
      }
      uni.y.push_back(s_uni / opt.datasets);
      poly.y.push_back(s_poly / opt.datasets);
    }
    const double delta =
        (poly.y.back() / uni.y.back() - 1.0) * 100.0;
    std::cout << "# " << spec.name << " @" << axis.back()
              << " cores: polymorphic speedup " << stats::fmt(delta)
              << "% vs uniform\n";
    table.add_series(std::move(uni));
    table.add_series(std::move(poly));
  }
  table.print(std::cout);
  return 0;
}
