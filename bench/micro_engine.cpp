// Engine primitive micro-benchmarks (google-benchmark).
//
// Measures the host-side costs that determine SiMany's simulation
// speed: fiber context switches, annotated compute blocks (which pay
// the spatial-synchronization check), memory-model accesses, the
// probe/spawn handshake, network message timing, and the supporting
// models in isolation.

#include <benchmark/benchmark.h>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/fiber.h"
#include "mem/pessimistic_l1.h"
#include "mem/setassoc_cache.h"
#include "net/network.h"
#include "obs/critpath.h"
#include "obs/telemetry.h"
#include "timing/cost_model.h"

using namespace simany;

namespace {

void BM_FiberSwitch(benchmark::State& state) {
  FiberPool pool(64 * 1024);
  bool stop = false;
  auto fiber = pool.create([&] {
    while (!stop) Fiber::yield();
  });
  for (auto _ : state) {
    fiber->resume();  // one switch in + one switch out
  }
  stop = true;
  fiber->resume();
}
BENCHMARK(BM_FiberSwitch);

void BM_FiberSwitchCold(benchmark::State& state) {
  // First activation: context/frame setup plus the switch in and the
  // terminating switch out. Recycling through the pool keeps stack
  // allocation out of the loop after warm-up, so this prices exactly
  // what every freshly spawned task pays.
  FiberPool pool(64 * 1024);
  for (auto _ : state) {
    auto fiber = pool.create([] {});
    fiber->resume();
    pool.recycle(std::move(fiber));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FiberSwitchCold);

void BM_ComputeBlock(benchmark::State& state) {
  // Cost of one annotated compute block on an otherwise idle engine,
  // including the drift-limit check. Measured in blocks/s by running a
  // single task that computes `n` blocks.
  const auto blocks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine sim(ArchConfig::shared_mesh(4));
    (void)sim.run([blocks](TaskCtx& ctx) {
      for (std::size_t i = 0; i < blocks; ++i) ctx.compute(10);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks));
}
BENCHMARK(BM_ComputeBlock)->Arg(10000);

void BM_MemAccess(benchmark::State& state) {
  const auto accesses = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine sim(ArchConfig::shared_mesh(4));
    (void)sim.run([accesses](TaskCtx& ctx) {
      for (std::size_t i = 0; i < accesses; ++i) {
        ctx.mem_read(i * 8, 8);
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_MemAccess)->Arg(10000);

void BM_ProbeSpawnJoin(benchmark::State& state) {
  // Full conditional-spawn round trip: probe handshake + task spawn +
  // completion + join notification, on a 16-core mesh.
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine sim(ArchConfig::shared_mesh(16));
    (void)sim.run([tasks](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < tasks; ++i) {
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(1); });
      }
      ctx.join(g);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          tasks);
}
BENCHMARK(BM_ProbeSpawnJoin)->Arg(1000);

void BM_MessageChurn(benchmark::State& state) {
  // Message-heavy fan-out on a distributed-memory mesh: per-message
  // host cost, plus how often a core inbox outgrew its inline ring
  // (`inbox_heap_allocs_per_run`). Steady-state traffic should be
  // allocation-free; the counter existing in the JSON output lets the
  // regression gate catch an inbox-depth regression directly.
  const int tasks = static_cast<int>(state.range(0));
  std::uint64_t messages = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    Engine sim(ArchConfig::distributed_mesh(16));
    const SimStats st = sim.run([tasks](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < tasks; ++i) {
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(1); });
      }
      ctx.join(g);
    });
    messages += st.messages;
    allocs += st.inbox_heap_allocs;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["inbox_heap_allocs_per_run"] = benchmark::Counter(
      static_cast<double>(allocs) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MessageChurn)->Arg(1000);

void BM_HostRound(benchmark::State& state) {
  // Overhead of the parallel backend's round machinery itself. Arg 0 is
  // the sequential baseline; otherwise the same workload runs under the
  // parallel host with that many shards on one worker thread, so the
  // difference is pure drain/publish/barrier cost with no thread
  // scheduling noise (rounds advance one drift window at a time).
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    ArchConfig cfg = ArchConfig::shared_mesh(64);
    if (shards > 0) {
      cfg.host.mode = HostMode::kParallel;
      cfg.host.threads = 1;
      cfg.host.shards = shards;
    }
    Engine sim(cfg);
    const SimStats st = sim.run([](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < 512; ++i) {
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(20); });
      }
      ctx.join(g);
    });
    rounds += st.host_rounds;
  }
  state.counters["host_rounds_per_run"] = benchmark::Counter(
      static_cast<double>(rounds) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_HostRound)->Arg(0)->Arg(4)->Arg(8);

void BM_SerialPhase(benchmark::State& state) {
  // Serial-phase cost in near-isolation: the BM_HostRound workload with
  // a tiny round budget, so the run decomposes into many short rounds
  // and the barrier machinery (proxy flip, mailbox seal, watchdog fold)
  // dominates. Divide wall time by `host_rounds_per_run` for ns/round;
  // the spread across shard counts exposes any O(shards^2) term.
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    ArchConfig cfg = ArchConfig::shared_mesh(64);
    cfg.host.mode = HostMode::kParallel;
    cfg.host.threads = 1;
    cfg.host.shards = shards;
    cfg.host.round_quanta = 32;
    Engine sim(cfg);
    const SimStats st = sim.run([](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < 512; ++i) {
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(20); });
      }
      ctx.join(g);
    });
    rounds += st.host_rounds;
  }
  state.counters["host_rounds_per_run"] = benchmark::Counter(
      static_cast<double>(rounds) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SerialPhase)->Arg(4)->Arg(16);

void BM_Telemetry(benchmark::State& state) {
  // Cost of the telemetry layer on the probe/spawn/join workload. Arg 0
  // runs with no Telemetry attached and guards the telemetry-off fast
  // path: every engine hook is a single `telemetry_ != nullptr` check,
  // so this must track BM_ProbeSpawnJoin. Arg 1 attaches a Telemetry
  // (events on, no sampling) and reports how many events one run emits
  // (`obs_events_per_run`), pricing the instrumented path.
  const bool attached = state.range(0) != 0;
  const int tasks = 1000;
  std::uint64_t events = 0;
  for (auto _ : state) {
    Engine sim(ArchConfig::shared_mesh(16));
    obs::Telemetry telemetry;
    if (attached) sim.set_telemetry(&telemetry);
    (void)sim.run([tasks](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < tasks; ++i) {
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(1); });
      }
      ctx.join(g);
    });
    events += telemetry.events().size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          tasks);
  state.counters["obs_events_per_run"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_Telemetry)->Arg(0)->Arg(1);

void BM_CritPath(benchmark::State& state) {
  // Post-mortem critical-path analysis over the event stream of the
  // probe/spawn/join workload. The analyzer is a pure function of the
  // merged stream, so one instrumented run supplies the input and each
  // iteration re-analyzes it; items/s is events analyzed per second.
  // `critpath_segments_per_run` rides along so the regression gate
  // catches a path-shape blow-up (runaway segment count) even when the
  // wall time still fits the threshold.
  obs::Telemetry telemetry;
  {
    Engine sim(ArchConfig::shared_mesh(16));
    sim.set_telemetry(&telemetry);
    (void)sim.run([](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < 1000; ++i) {
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(1); });
      }
      ctx.join(g);
    });
  }
  const std::vector<obs::Event>& events = telemetry.events();
  std::uint64_t segments = 0;
  for (auto _ : state) {
    const obs::CritPathReport report = obs::analyze_critical_path(events);
    benchmark::DoNotOptimize(report.total_ticks);
    segments += report.segments.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
  state.counters["critpath_segments_per_run"] = benchmark::Counter(
      static_cast<double>(segments) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CritPath);

void BM_NetworkSend(benchmark::State& state) {
  const auto topo = net::Topology::mesh2d(1024);
  net::Network network(topo);
  Tick t = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        network.send(i % 1024, (i * 37 + 11) % 1024, 64, t));
    t += 12;
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSend);

void BM_RoutingTableBuild(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const auto topo = net::Topology::mesh2d(cores);
  for (auto _ : state) {
    net::RoutingTable table(topo);
    benchmark::DoNotOptimize(table.hops(0, cores - 1));
  }
}
BENCHMARK(BM_RoutingTableBuild)->Arg(64)->Arg(1024);

void BM_RouteLookup(benchmark::State& state) {
  // Per-query routing cost on a 1024-core mesh. Arg 1 exercises the
  // closed-form DOR arithmetic; Arg 0 forces latency weighting onto the
  // same mesh, taking the lazy per-destination row path (all rows
  // warmed by the first benchmark pass).
  const bool closed = state.range(0) != 0;
  const auto topo = net::Topology::mesh2d(1024);
  const net::RoutingTable table(topo, closed
                                          ? net::RouteWeighting::kHops
                                          : net::RouteWeighting::kLatency);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const net::CoreId from = i % 1024;
    const net::CoreId to = (i * 37 + 11) % 1024;
    benchmark::DoNotOptimize(table.next_hop(from, to));
    benchmark::DoNotOptimize(table.hops(from, to));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteLookup)->Arg(0)->Arg(1);

void BM_PessimisticL1(benchmark::State& state) {
  mem::PessimisticL1 l1(32);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l1.access(addr, 8));
    addr += 8;
    if (addr > 64 * 1024) {
      l1.flush();
      addr = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PessimisticL1);

void BM_SetAssocCache(benchmark::State& state) {
  mem::SetAssocCache cache({16 * 1024, 32, 4});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, false));
    addr = addr * 1664525 + 1013904223;  // pseudo-random walk
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocCache);

void BM_CostModelBlock(benchmark::State& state) {
  timing::CostModel model;
  Rng rng(7);
  const timing::InstMix mix{.int_alu = 12, .int_mul = 2, .fp_alu = 4,
                            .fp_mul_div = 1, .branches = 3,
                            .branches_static = 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.block_cost(mix, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CostModelBlock);

}  // namespace
