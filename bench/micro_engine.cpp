// Engine primitive micro-benchmarks (google-benchmark).
//
// Measures the host-side costs that determine SiMany's simulation
// speed: fiber context switches, annotated compute blocks (which pay
// the spatial-synchronization check), memory-model accesses, the
// probe/spawn handshake, network message timing, and the supporting
// models in isolation.

#include <benchmark/benchmark.h>

#include "config/arch_config.h"
#include "core/engine.h"
#include "core/fiber.h"
#include "mem/pessimistic_l1.h"
#include "mem/setassoc_cache.h"
#include "net/network.h"
#include "timing/cost_model.h"

using namespace simany;

namespace {

void BM_FiberSwitch(benchmark::State& state) {
  FiberPool pool(64 * 1024);
  bool stop = false;
  auto fiber = pool.create([&] {
    while (!stop) Fiber::yield();
  });
  for (auto _ : state) {
    fiber->resume();  // one switch in + one switch out
  }
  stop = true;
  fiber->resume();
}
BENCHMARK(BM_FiberSwitch);

void BM_ComputeBlock(benchmark::State& state) {
  // Cost of one annotated compute block on an otherwise idle engine,
  // including the drift-limit check. Measured in blocks/s by running a
  // single task that computes `n` blocks.
  const auto blocks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine sim(ArchConfig::shared_mesh(4));
    (void)sim.run([blocks](TaskCtx& ctx) {
      for (std::size_t i = 0; i < blocks; ++i) ctx.compute(10);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(blocks));
}
BENCHMARK(BM_ComputeBlock)->Arg(10000);

void BM_MemAccess(benchmark::State& state) {
  const auto accesses = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Engine sim(ArchConfig::shared_mesh(4));
    (void)sim.run([accesses](TaskCtx& ctx) {
      for (std::size_t i = 0; i < accesses; ++i) {
        ctx.mem_read(i * 8, 8);
      }
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_MemAccess)->Arg(10000);

void BM_ProbeSpawnJoin(benchmark::State& state) {
  // Full conditional-spawn round trip: probe handshake + task spawn +
  // completion + join notification, on a 16-core mesh.
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine sim(ArchConfig::shared_mesh(16));
    (void)sim.run([tasks](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < tasks; ++i) {
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(1); });
      }
      ctx.join(g);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          tasks);
}
BENCHMARK(BM_ProbeSpawnJoin)->Arg(1000);

void BM_NetworkSend(benchmark::State& state) {
  const auto topo = net::Topology::mesh2d(1024);
  net::Network network(topo);
  Tick t = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        network.send(i % 1024, (i * 37 + 11) % 1024, 64, t));
    t += 12;
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSend);

void BM_RoutingTableBuild(benchmark::State& state) {
  const auto cores = static_cast<std::uint32_t>(state.range(0));
  const auto topo = net::Topology::mesh2d(cores);
  for (auto _ : state) {
    net::RoutingTable table(topo);
    benchmark::DoNotOptimize(table.hops(0, cores - 1));
  }
}
BENCHMARK(BM_RoutingTableBuild)->Arg(64)->Arg(1024);

void BM_PessimisticL1(benchmark::State& state) {
  mem::PessimisticL1 l1(32);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(l1.access(addr, 8));
    addr += 8;
    if (addr > 64 * 1024) {
      l1.flush();
      addr = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PessimisticL1);

void BM_SetAssocCache(benchmark::State& state) {
  mem::SetAssocCache cache({16 * 1024, 32, 4});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, false));
    addr = addr * 1664525 + 1013904223;  // pseudo-random walk
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocCache);

void BM_CostModelBlock(benchmark::State& state) {
  timing::CostModel model;
  Rng rng(7);
  const timing::InstMix mix{.int_alu = 12, .int_mul = 2, .fp_alu = 4,
                            .fp_mul_div = 1, .branches = 3,
                            .branches_static = 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.block_cost(mix, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CostModelBlock);

}  // namespace
