// Figure 8: Regular 2D Mesh Speedups (Shared-Memory).
//
// Virtual-time speedups of the six dwarfs on the optimistic
// shared-memory architecture (uniform 10-cycle shared memory, no
// coherence delays), for 1/8/64/256/1024-core meshes, T = 100.
//
// Paper shape to reproduce: Dijkstra super-linear; SpMxV scales well to
// 64 cores then tops out (dataset-bound); Quicksort capped near its
// theoretical log2(n)/2 bound; 256 -> 1024 cores makes little
// difference for most benchmarks.

#include <iostream>

#include "bench/harness.h"
#include "bench/runner.h"
#include "stats/report.h"

using namespace simany;

int main(int argc, char** argv) {
  const auto opt = bench::HarnessOptions::parse(argc, argv,
                                                /*default_factor=*/0.25,
                                                /*default_datasets=*/5);
  opt.print_header("Figure 8: Regular 2D Mesh Speedups (Shared-Memory)");

  const auto axis = opt.exploration_axis();
  std::vector<double> xs(axis.begin(), axis.end());
  stats::FigureTable table("Virtual-time speedup vs # of cores", "cores",
                           xs);

  auto make_cfg = [&opt](std::uint32_t cores) {
    return bench::apply_host_threads(ArchConfig::shared_mesh(cores),
                                     opt.host_threads);
  };

  // Per-dataset 1-core baselines are recomputed inside mean_speedup;
  // caching would only matter at paper scale.
  for (const auto& spec : dwarfs::all_dwarfs()) {
    stats::Series s;
    s.name = spec.name;
    for (std::uint32_t cores : axis) {
      s.y.push_back(bench::mean_speedup(spec, make_cfg, cores, opt.factor,
                                        opt.datasets, opt.seed));
    }
    table.add_series(std::move(s));
  }
  table.print(std::cout);
  return 0;
}
