// Figures 10 & 11 (tables): effect of the maximum local drift T.
//
// Fig 10: average virtual-time speedup variation per benchmark when T
// moves from the baseline 100 to 50 / 500 / 1000 (shared-memory
// architecture, averaged over the 64..1024-core points — the part of
// the scalability profile the paper considers of interest).
// Paper: regular benchmarks barely move; Dijkstra and Connected
// Components degrade at large T (less intermixed simulation explores
// worse paths); everything stays within a few percent at T = 50.
//
// Fig 11: average *simulation time* variation for the same runs.
// Paper: T=50 costs ~+26.7% on average; T=1000 speeds simulation up by
// an average factor 2.38.

#include <iostream>
#include <map>

#include "bench/harness.h"
#include "bench/runner.h"
#include "stats/report.h"

using namespace simany;

int main(int argc, char** argv) {
  const auto opt = bench::HarnessOptions::parse(argc, argv,
                                                /*default_factor=*/0.15,
                                                /*default_datasets=*/3);
  opt.print_header(
      "Figures 10 & 11: Speedup and Simulation-Time Variations with T "
      "(baseline T = 100)");

  std::vector<std::uint32_t> core_axis;
  for (std::uint32_t c : {64u, 256u, 1024u}) {
    if (c <= opt.max_cores) core_axis.push_back(c);
  }
  if (core_axis.empty()) core_axis.push_back(opt.max_cores);

  const std::vector<Cycles> t_values = {50, 500, 1000};
  const Cycles t_base = 100;

  auto make_cfg = [](std::uint32_t cores, Cycles t) {
    ArchConfig cfg = ArchConfig::shared_mesh(cores);
    cfg.drift_t_cycles = t;
    return cfg;
  };

  // [dwarf][T] -> (avg speedup variation %, avg sim time variation %)
  std::vector<std::string> names;
  std::map<std::string, std::map<Cycles, std::pair<double, double>>> out;

  for (const auto& spec : dwarfs::all_dwarfs()) {
    names.push_back(spec.name);
    for (Cycles t : t_values) {
      double sp_var = 0, wall_var = 0;
      int n = 0;
      for (std::uint32_t cores : core_axis) {
        for (int d = 0; d < opt.datasets; ++d) {
          const std::uint64_t seed = opt.seed + 1000ull * d;
          const auto base1 =
              bench::run_dwarf(spec, seed, opt.factor, make_cfg(1, t_base));
          const auto base =
              bench::run_dwarf(spec, seed, opt.factor,
                               make_cfg(cores, t_base));
          const auto var =
              bench::run_dwarf(spec, seed, opt.factor, make_cfg(cores, t));
          const double sp_base = double(base1.vt) / double(base.vt);
          const double sp_t = double(base1.vt) / double(var.vt);
          sp_var += (sp_t - sp_base) / sp_base;
          wall_var += (var.wall - base.wall) / base.wall;
          ++n;
        }
      }
      out[spec.name][t] = {100.0 * sp_var / n, 100.0 * wall_var / n};
    }
  }

  auto print_table = [&](const char* title, bool simtime) {
    std::cout << "\n== " << title << " ==\n";
    std::printf("%8s", "T");
    for (const auto& name : names) std::printf("  %20s", name.c_str());
    std::printf("\n");
    for (Cycles t : t_values) {
      std::printf("%8llu", static_cast<unsigned long long>(t));
      for (const auto& name : names) {
        const auto& [sp, wall] = out[name][t];
        std::printf("  %19s%%", stats::fmt(simtime ? wall : sp).c_str());
      }
      std::printf("\n");
    }
  };
  print_table(
      "Figure 10: Average Virtual Time Speedup Variations with T", false);
  print_table(
      "Figure 11: Average Simulation Time Variations with T", true);
  return 0;
}
