// Figure 9: Regular 2D Mesh Speedups (Distributed-Memory).
//
// The realistic architecture: per-core L2 (10 cycles), run-time-managed
// cells, 1-cycle links at 128 B/cycle. Paper shape: Quicksort and SpMxV
// barely change vs shared memory (little data movement, no cell
// contention); the data-contended Dijkstra and Connected Components
// collapse, with Connected Components degrading above 8 cores.

#include <iostream>

#include "bench/harness.h"
#include "bench/runner.h"
#include "stats/report.h"

using namespace simany;

int main(int argc, char** argv) {
  const auto opt = bench::HarnessOptions::parse(argc, argv,
                                                /*default_factor=*/0.25,
                                                /*default_datasets=*/5);
  opt.print_header(
      "Figure 9: Regular 2D Mesh Speedups (Distributed-Memory)");

  const auto axis = opt.exploration_axis();
  std::vector<double> xs(axis.begin(), axis.end());
  stats::FigureTable table("Virtual-time speedup vs # of cores", "cores",
                           xs);

  auto make_cfg = [](std::uint32_t cores) {
    return ArchConfig::distributed_mesh(cores);
  };
  for (const auto& spec : dwarfs::all_dwarfs()) {
    stats::Series s{spec.name, {}};
    for (std::uint32_t cores : axis) {
      s.y.push_back(bench::mean_speedup(spec, make_cfg, cores, opt.factor,
                                        opt.datasets, opt.seed));
    }
    table.add_series(std::move(s));
  }
  table.print(std::cout);
  return 0;
}
