// Shared command-line harness for the figure-reproduction benches.
//
// Every bench binary accepts:
//   --factor <f>     dataset scale relative to the paper (default
//                    per-binary, recorded in the output header)
//   --datasets <n>   number of random datasets averaged per point
//   --seed <s>       base seed
//   --max-cores <n>  clip the core-count axis
//   --host-threads <n>  run simulations on the parallel host backend
//   --json <path>    also write machine-readable results (benches that
//                    support it; used by the CI perf gate)
//   --full           paper-scale datasets (factor 1.0, 50 datasets)
//
// and prints FigureTable output matching the paper's rows/series.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace simany::bench {

struct HarnessOptions {
  double factor = 0.05;
  int datasets = 3;
  std::uint64_t seed = 1;
  std::uint32_t max_cores = 1024;
  std::uint32_t host_threads = 0;  // 0 = sequential host
  std::string json_path;
  bool full = false;

  static HarnessOptions parse(int argc, char** argv,
                              double default_factor,
                              int default_datasets,
                              std::uint32_t default_max_cores = 1024) {
    HarnessOptions o;
    o.factor = default_factor;
    o.datasets = default_datasets;
    o.max_cores = default_max_cores;
    for (int i = 1; i < argc; ++i) {
      auto need = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag);
          std::exit(2);
        }
        return argv[++i];
      };
      if (std::strcmp(argv[i], "--factor") == 0) {
        o.factor = std::atof(need("--factor"));
      } else if (std::strcmp(argv[i], "--datasets") == 0) {
        o.datasets = std::atoi(need("--datasets"));
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        o.seed = std::strtoull(need("--seed"), nullptr, 10);
      } else if (std::strcmp(argv[i], "--max-cores") == 0) {
        o.max_cores = static_cast<std::uint32_t>(
            std::strtoul(need("--max-cores"), nullptr, 10));
      } else if (std::strcmp(argv[i], "--host-threads") == 0) {
        o.host_threads = static_cast<std::uint32_t>(
            std::strtoul(need("--host-threads"), nullptr, 10));
      } else if (std::strcmp(argv[i], "--json") == 0) {
        o.json_path = need("--json");
      } else if (std::strcmp(argv[i], "--full") == 0) {
        o.full = true;
        o.factor = 1.0;
        o.datasets = 50;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::printf(
            "usage: %s [--factor f] [--datasets n] [--seed s] "
            "[--max-cores n] [--host-threads n] [--json path] [--full]\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
        std::exit(2);
      }
    }
    return o;
  }

  void print_header(const char* what) const {
    std::printf("# %s\n", what);
    std::printf(
        "# factor=%g datasets=%d seed=%llu max_cores=%u host_threads=%u%s\n",
        factor, datasets, static_cast<unsigned long long>(seed), max_cores,
        host_threads,
        full ? " (paper scale)" : " (scaled down; use --full for paper "
                                  "scale)");
  }

  /// Core counts up to max_cores from the paper's axis {1,8,64,256,1024}
  /// (exploration figures) or {1,2,4,8,16,32,64} (validation figures).
  [[nodiscard]] std::vector<std::uint32_t> exploration_axis() const {
    std::vector<std::uint32_t> xs;
    for (std::uint32_t c : {1u, 8u, 64u, 256u, 1024u}) {
      if (c <= max_cores) xs.push_back(c);
    }
    return xs;
  }
  [[nodiscard]] std::vector<std::uint32_t> validation_axis() const {
    std::vector<std::uint32_t> xs;
    for (std::uint32_t c : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      if (c <= max_cores) xs.push_back(c);
    }
    return xs;
  }
};

}  // namespace simany::bench
