// Ablation: run-time system knobs the paper leaves implicit.
//
// 1. Task-queue capacity — how deep push-migration can diffuse a flat
//    fan-out of tasks through the mesh (pressure must build in queues
//    before work is forwarded; see DESIGN.md).
// 2. Occupancy proxies — instant (always-fresh, the default
//    simplification) vs broadcast-based stale proxies (the paper's
//    literal SS IV mechanism): effect on probe denials, message count
//    and virtual time.

#include <cstdio>

#include "bench/harness.h"
#include "bench/runner.h"

using namespace simany;

int main(int argc, char** argv) {
  const auto opt = bench::HarnessOptions::parse(argc, argv,
                                                /*default_factor=*/0.15,
                                                /*default_datasets=*/1,
                                                /*default_max_cores=*/64);
  opt.print_header("Ablation: run-time knobs (queue capacity, "
                   "occupancy proxies)");

  // ---- Queue capacity vs flat fan-out diffusion ----------------------
  std::printf("\n-- task-queue capacity vs fan-out diffusion "
              "(2000 x 2000-cycle tasks from core 0, %u-core mesh) --\n",
              opt.max_cores);
  std::printf("%10s %10s %12s %10s\n", "capacity", "busy", "virtual",
              "migrated");
  for (std::uint32_t cap : {1u, 2u, 4u, 8u, 16u}) {
    ArchConfig cfg = ArchConfig::shared_mesh(opt.max_cores);
    cfg.runtime.task_queue_capacity = cap;
    Engine sim(std::move(cfg));
    const auto st = sim.run([](TaskCtx& ctx) {
      const GroupId g = ctx.make_group();
      for (int i = 0; i < 2000; ++i) {
        spawn_or_run(ctx, g, [](TaskCtx& c) { c.compute(2000); });
      }
      ctx.join(g);
    });
    std::size_t busy = 0;
    for (Tick b : st.core_busy_ticks) {
      if (b > 0) ++busy;
    }
    std::printf("%10u %10zu %12llu %10llu\n", cap, busy,
                static_cast<unsigned long long>(st.completion_cycles()),
                static_cast<unsigned long long>(st.tasks_migrated));
  }

  // ---- Occupancy proxies ----------------------------------------------
  std::printf("\n-- occupancy proxies: instant vs broadcast "
              "(dijkstra, %u cores) --\n", opt.max_cores);
  std::printf("%-10s %12s %10s %10s %10s %12s\n", "proxies", "virtual",
              "probes", "denied", "messages", "wall(ms)");
  for (const bool broadcast : {false, true}) {
    ArchConfig cfg = ArchConfig::shared_mesh(opt.max_cores);
    cfg.runtime.broadcast_occupancy = broadcast;
    Engine sim(std::move(cfg));
    const auto st = sim.run(
        dwarfs::dwarf_by_name("dijkstra").make_root(opt.seed, opt.factor));
    std::printf("%-10s %12llu %10llu %10llu %10llu %12.2f\n",
                broadcast ? "broadcast" : "instant",
                static_cast<unsigned long long>(st.completion_cycles()),
                static_cast<unsigned long long>(st.probes_sent),
                static_cast<unsigned long long>(st.probes_denied),
                static_cast<unsigned long long>(st.messages),
                st.wall_seconds * 1e3);
  }
  return 0;
}
