// Ablation: spatial synchronization vs global-window synchronization,
// and the T accuracy/speed toggle (DESIGN.md SS5).
//
// Spatial synchronization is defined by the *sync topology* = the
// interconnect graph. On a crossbar every core is everyone's neighbor,
// so the local drift bound degenerates into SlackSim-style bounded
// slack against a global window; on a mesh it is the paper's purely
// local scheme. Comparing the two at equal T isolates what locality
// buys: longer uninterrupted runs (fewer stalls / fiber switches) at
// equal or better wall time, with only small virtual-time deviations.

#include <cstdio>

#include "bench/harness.h"
#include "bench/runner.h"

using namespace simany;

namespace {

struct Row {
  const char* scheme;
  Cycles t;
  Tick vt;
  double wall;
  std::uint64_t stalls;
  std::uint64_t switches;
  std::uint64_t limit_recomputes;
};

Row measure(const char* scheme, net::Topology topo, Cycles t,
            const dwarfs::DwarfSpec& spec, double factor,
            std::uint64_t seed) {
  ArchConfig cfg = ArchConfig::shared_mesh(topo.num_cores());
  cfg.topology = std::move(topo);
  cfg.drift_t_cycles = t;
  Engine sim(std::move(cfg));
  const auto stats = sim.run(spec.make_root(seed, factor));
  return Row{scheme,
             t,
             stats.completion_ticks,
             stats.wall_seconds,
             stats.sync_stalls,
             stats.fiber_switches,
             stats.limit_recomputes};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::HarnessOptions::parse(argc, argv,
                                                /*default_factor=*/0.2,
                                                /*default_datasets=*/1,
                                                /*default_max_cores=*/64);
  opt.print_header(
      "Ablation: spatial (mesh) vs global-window (crossbar) "
      "synchronization, and the T toggle");
  const std::uint32_t cores = opt.max_cores;
  const auto& spec = dwarfs::dwarf_by_name("spmxv");

  std::printf("%-22s %6s %12s %10s %10s %10s %12s\n", "scheme", "T",
              "virtual", "wall(ms)", "stalls", "switches", "limit-calcs");
  for (Cycles t : {Cycles{10}, Cycles{100}, Cycles{1000}}) {
    for (int scheme = 0; scheme < 2; ++scheme) {
      const bool mesh = scheme == 0;
      Row r = measure(mesh ? "spatial(mesh)" : "global(crossbar)",
                      mesh ? net::Topology::mesh2d(cores)
                           : net::Topology::crossbar(cores),
                      t, spec, opt.factor, opt.seed);
      std::printf("%-22s %6llu %12llu %10.2f %10llu %10llu %12llu\n",
                  r.scheme, static_cast<unsigned long long>(r.t),
                  static_cast<unsigned long long>(cycles_floor(r.vt)),
                  r.wall * 1e3,
                  static_cast<unsigned long long>(r.stalls),
                  static_cast<unsigned long long>(r.switches),
                  static_cast<unsigned long long>(r.limit_recomputes));
    }
  }
  return 0;
}
