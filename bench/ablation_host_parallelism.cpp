// Ablation: available host parallelism under spatial synchronization.
//
// The paper's conclusion (SS VIII) reports a preliminary study: "at
// least from networks with 64 cores, there are enough cores verifying
// these conditions [simulatable independently within their local time
// window] to keep all cores of current multi-core host machines busy."
// This bench measures that quantity directly: the engine samples, every
// 64 scheduler quanta, how many simulated cores are concurrently
// advanceable (actionable and not drift-capped).

#include <cstdio>

#include "bench/harness.h"
#include "bench/runner.h"

using namespace simany;

int main(int argc, char** argv) {
  const auto opt = bench::HarnessOptions::parse(argc, argv,
                                                /*default_factor=*/0.25,
                                                /*default_datasets=*/1);
  opt.print_header(
      "Ablation: available host parallelism (paper SS VIII claim: "
      ">= 8 from 64-core networks)");

  std::printf("%-22s %8s %12s %12s\n", "dwarf", "cores",
              "avg parallel", "max parallel");
  for (const auto& spec : dwarfs::all_dwarfs()) {
    for (std::uint32_t cores : opt.exploration_axis()) {
      if (cores < 8) continue;
      Engine sim(ArchConfig::shared_mesh(cores));
      const auto stats = sim.run(spec.make_root(opt.seed, opt.factor));
      std::printf("%-22s %8u %12.1f %12llu\n", spec.name.c_str(), cores,
                  stats.avg_parallelism(),
                  static_cast<unsigned long long>(stats.parallelism_max));
    }
  }
  return 0;
}
